//! Discovery drivers: run route discoveries and probe tests over a
//! [`NetworkPlan`].
//!
//! A [`Session`] owns the network and the per-node behaviours and can run
//! several phases over them — a route discovery followed by SAM's step-2
//! probe test uses the *same* world, as it would in a deployment. The
//! behaviours are generic (`B: Behavior + RouterAccess`) so the attack
//! crate can substitute wormhole/blackhole wrappers without touching the
//! driver.

use crate::node::{timer, RouterAccess, RouterConfig, RouterNode};
use crate::packet::{RoutingMsg, RreqId};
use crate::policy::ProtocolKind;
use crate::route::Route;
use manet_sim::{Behavior, LatencyModel, Network, NetworkPlan, NodeId, SimDuration};

/// Result of one route discovery.
#[derive(Clone, Debug)]
pub struct DiscoveryOutcome {
    /// The discovery id.
    pub id: RreqId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// The route set collected and finalized at the destination — SAM's
    /// input "R: the set of all obtained routes".
    pub routes: Vec<Route>,
    /// Routes the source got back via RREP (the selected disjoint subset).
    pub source_routes: Vec<Route>,
    /// The paper's overhead criterion for this discovery: total
    /// over-the-air transmissions + receptions at all nodes.
    pub overhead: u64,
    /// Events processed by the engine.
    pub events: u64,
    /// True if the engine hit its safety cap (never expected at paper
    /// scale; surfaced so experiments can assert on it).
    pub truncated: bool,
}

/// Result of a probe test over one route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// Probes sent.
    pub sent: u32,
    /// Probes acknowledged end-to-end.
    pub acked: u32,
}

impl ProbeOutcome {
    /// Fraction of probes acknowledged, in `[0, 1]`.
    pub fn ack_ratio(self) -> f64 {
        if self.sent == 0 {
            return 0.0;
        }
        f64::from(self.acked) / f64::from(self.sent)
    }
}

/// A live simulated network plus its per-node behaviours.
pub struct Session<B> {
    net: Network<RoutingMsg>,
    nodes: Vec<B>,
    probe_seq: u32,
}

impl<B: Behavior<Msg = RoutingMsg> + RouterAccess> Session<B> {
    /// Build a session over `plan` with behaviour factory `make` (called
    /// once per node id, in id order).
    pub fn new<F>(plan: &NetworkPlan, latency: LatencyModel, seed: u64, mut make: F) -> Self
    where
        F: FnMut(NodeId) -> B,
    {
        let net = Network::new(plan.topology.clone(), latency, seed);
        let nodes: Vec<B> = plan.topology.nodes().map(&mut make).collect();
        Session {
            net,
            nodes,
            probe_seq: 0,
        }
    }

    /// The underlying network (metrics, clock, …).
    pub fn network(&self) -> &Network<RoutingMsg> {
        &self.net
    }

    /// Mutable access to the underlying network (trace control, loss, …).
    pub fn network_mut(&mut self) -> &mut Network<RoutingMsg> {
        &mut self.net
    }

    /// Start recording the causal flight trace (see
    /// [`Network::enable_trace`]); `capacity` bounds the buffer.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.net.enable_trace(capacity);
    }

    /// Stop tracing and take the recorded trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<manet_sim::Trace> {
        self.net.take_trace()
    }

    /// Set the channel loss probability for all subsequent traffic (see
    /// [`Network::set_loss_prob`]).
    pub fn set_loss_prob(&mut self, p: f64) {
        self.net.set_loss_prob(p);
    }

    /// Install a fault hook on the underlying network (see
    /// [`Network::set_fault_hook`]); fault-plan crates use this to
    /// compose loss bursts, churn and jitter onto any session.
    pub fn set_fault_hook(&mut self, hook: Box<dyn manet_sim::FaultHook>) {
        self.net.set_fault_hook(hook);
    }

    /// Cumulative fault-injection statistics of the underlying network.
    pub fn fault_stats(&self) -> manet_sim::FaultStats {
        self.net.fault_stats()
    }

    /// Behaviour of one node.
    pub fn node(&self, id: NodeId) -> &B {
        &self.nodes[id.idx()]
    }

    /// Mutable behaviour of one node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut B {
        &mut self.nodes[id.idx()]
    }

    /// Run one route discovery from `src` to `dst` and wait (in simulated
    /// time) until the network quiesces or `max_wait` passes. Overhead
    /// counters are reset at the start so the outcome reports this
    /// discovery alone.
    pub fn discover(
        &mut self,
        src: NodeId,
        dst: NodeId,
        max_wait: SimDuration,
    ) -> DiscoveryOutcome {
        let mut span = sam_telemetry::span("discovery");
        span.field("src", src);
        span.field("dst", dst);
        self.net.reset_metrics();
        let id = self.nodes[src.idx()].router_mut().queue_discovery(dst);
        self.net
            .schedule_timer(src, SimDuration::ZERO, timer::START_DISCOVERY);
        let deadline = self.net.now() + max_wait;
        let stats = self.net.run(&mut self.nodes, deadline);
        let routes = self.nodes[dst.idx()]
            .router()
            .routes_for(id)
            .unwrap_or(&[])
            .to_vec();
        let source_routes = self.nodes[src.idx()].router().source_routes().to_vec();
        span.field("routes", routes.len());
        span.field("overhead", self.net.metrics().overhead());
        span.field("events", stats.events_processed);
        if let Some(tel) = sam_telemetry::global() {
            let registry = tel.registry();
            registry.counter("discovery.count").inc();
            registry
                .counter("discovery.routes_found")
                .add(routes.len() as u64);
            // Flood wavefront size: how many nodes the discovery's
            // traffic reached (any reception, air or tunnel).
            let wavefront = self
                .net
                .metrics()
                .iter()
                .filter(|(_, c)| c.rx > 0 || c.tunnel_rx > 0)
                .count() as u64;
            registry
                .histogram_pow2("discovery.wavefront")
                .record(wavefront);
        }
        DiscoveryOutcome {
            id,
            src,
            dst,
            routes,
            source_routes,
            overhead: self.net.metrics().overhead(),
            events: stats.events_processed,
            truncated: stats.truncated,
        }
    }

    /// SAM step 2: send `count` source-routed probe packets from the
    /// route's source along `route`, spaced `spacing` apart, and count the
    /// end-to-end ACKs that come back within `max_wait` of the last send.
    pub fn probe(
        &mut self,
        route: &Route,
        count: u32,
        spacing: SimDuration,
        max_wait: SimDuration,
    ) -> ProbeOutcome {
        let src = route.src();
        let first = self.probe_seq;
        for i in 0..count {
            self.nodes[src.idx()]
                .router_mut()
                .queue_data(route.clone(), first + i);
            self.net
                .schedule_timer(src, spacing.saturating_mul(u64::from(i)), timer::SEND_DATA);
        }
        self.probe_seq += count;
        let deadline = self.net.now() + spacing.saturating_mul(u64::from(count)) + max_wait;
        self.net.run(&mut self.nodes, deadline);
        let router = self.nodes[src.idx()].router();
        let acked = (first..first + count)
            .filter(|&s| router.was_acked(s))
            .count() as u32;
        ProbeOutcome { sent: count, acked }
    }
}

/// Default per-discovery quiesce budget: generous relative to the ~ms hop
/// latencies and the 200 ms collection window.
pub const DEFAULT_MAX_WAIT: SimDuration = SimDuration(60_000_000); // 60 s

/// Convenience: one discovery over `plan` with plain (attack-free) routers
/// speaking `protocol`.
pub fn run_discovery(
    plan: &NetworkPlan,
    protocol: ProtocolKind,
    src: NodeId,
    dst: NodeId,
    seed: u64,
) -> DiscoveryOutcome {
    run_discovery_with_config(plan, RouterConfig::new(protocol), src, dst, seed)
}

/// Convenience: one discovery with an explicit router configuration.
pub fn run_discovery_with_config(
    plan: &NetworkPlan,
    cfg: RouterConfig,
    src: NodeId,
    dst: NodeId,
    seed: u64,
) -> DiscoveryOutcome {
    let mut session = Session::new(plan, LatencyModel::default(), seed, |id| {
        RouterNode::new(id, cfg.clone())
    });
    session.discover(src, dst, DEFAULT_MAX_WAIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::prelude::*;

    fn line_plan(n: usize) -> NetworkPlan {
        let topo = Topology::new((0..n).map(|i| Pos::new(i as f64, 0.0)).collect(), 1.1);
        NetworkPlan {
            name: "line".into(),
            topology: topo,
            src_pool: vec![NodeId(0)],
            dst_pool: vec![NodeId::from_idx(n - 1)],
            attacker_pairs: vec![],
        }
    }

    #[test]
    fn dsr_finds_the_single_line_route() {
        let plan = line_plan(5);
        let out = run_discovery(&plan, ProtocolKind::Dsr, NodeId(0), NodeId(4), 1);
        assert!(!out.truncated);
        assert_eq!(out.routes.len(), 1);
        let r = &out.routes[0];
        assert_eq!(r.src(), NodeId(0));
        assert_eq!(r.dst(), NodeId(4));
        assert_eq!(r.hops(), 4);
        // The source got the route back via RREP.
        assert_eq!(out.source_routes.len(), 1);
        assert_eq!(out.source_routes[0], *r);
    }

    #[test]
    fn mr_on_a_line_equals_dsr() {
        // No alternative paths exist on a line: MR finds the same set.
        let plan = line_plan(4);
        let out = run_discovery(&plan, ProtocolKind::Mr, NodeId(0), NodeId(3), 1);
        assert_eq!(out.routes.len(), 1);
        assert_eq!(out.routes[0].hops(), 3);
    }

    fn grid_plan() -> NetworkPlan {
        uniform_grid(4, 4, 1)
    }

    #[test]
    fn mr_finds_more_routes_than_dsr_on_a_grid() {
        let plan = grid_plan();
        let src = plan.src_pool[0];
        let dst = plan.dst_pool[plan.dst_pool.len() - 1];
        let dsr = run_discovery(&plan, ProtocolKind::Dsr, src, dst, 3);
        let mr = run_discovery(&plan, ProtocolKind::Mr, src, dst, 3);
        assert!(
            mr.routes.len() > dsr.routes.len(),
            "MR {} vs DSR {}",
            mr.routes.len(),
            dsr.routes.len()
        );
    }

    #[test]
    fn mr_overhead_exceeds_dsr_overhead() {
        // Table II's qualitative claim.
        let plan = grid_plan();
        let src = plan.src_pool[0];
        let dst = plan.dst_pool[0];
        let dsr = run_discovery(&plan, ProtocolKind::Dsr, src, dst, 5);
        let mr = run_discovery(&plan, ProtocolKind::Mr, src, dst, 5);
        assert!(
            mr.overhead > dsr.overhead,
            "MR {} vs DSR {}",
            mr.overhead,
            dsr.overhead
        );
    }

    #[test]
    fn all_discovered_routes_are_valid_paths() {
        let plan = grid_plan();
        let src = plan.src_pool[1];
        let dst = plan.dst_pool[1];
        for proto in [ProtocolKind::Mr, ProtocolKind::Smr, ProtocolKind::Aomdv] {
            let out = run_discovery(&plan, proto, src, dst, 7);
            assert!(!out.routes.is_empty(), "{proto}: no routes");
            for r in &out.routes {
                assert_eq!(r.src(), src);
                assert_eq!(r.dst(), dst);
                for w in r.nodes().windows(2) {
                    assert!(
                        plan.topology.are_neighbors(w[0], w[1]),
                        "{proto}: non-adjacent hop in {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn smr_yields_no_more_routes_than_mr() {
        let plan = grid_plan();
        let src = plan.src_pool[2];
        let dst = plan.dst_pool[2];
        let mr = run_discovery(&plan, ProtocolKind::Mr, src, dst, 11);
        let smr = run_discovery(&plan, ProtocolKind::Smr, src, dst, 11);
        assert!(
            smr.routes.len() <= mr.routes.len(),
            "SMR {} vs MR {}",
            smr.routes.len(),
            mr.routes.len()
        );
    }

    #[test]
    fn probe_over_honest_route_acks_fully() {
        let plan = line_plan(4);
        let mut session = Session::new(&plan, LatencyModel::default(), 2, |id| {
            RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr))
        });
        let out = session.discover(NodeId(0), NodeId(3), DEFAULT_MAX_WAIT);
        assert_eq!(out.routes.len(), 1);
        let probe = session.probe(
            &out.routes[0],
            5,
            SimDuration::from_millis(10),
            SimDuration::from_millis(500),
        );
        assert_eq!(probe.sent, 5);
        assert_eq!(probe.acked, 5);
        assert!((probe.ack_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn discovery_is_deterministic_per_seed() {
        let plan = grid_plan();
        let src = plan.src_pool[0];
        let dst = plan.dst_pool[3];
        let a = run_discovery(&plan, ProtocolKind::Mr, src, dst, 42);
        let b = run_discovery(&plan, ProtocolKind::Mr, src, dst, 42);
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.overhead, b.overhead);
        let c = run_discovery(&plan, ProtocolKind::Mr, src, dst, 43);
        // Different seeds virtually always shuffle the collected set.
        assert!(c.routes != a.routes || c.overhead != a.overhead);
    }
}
