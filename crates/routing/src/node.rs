//! The router behaviour run by every node.
//!
//! One [`RouterNode`] type implements all four protocols; the
//! [`ForwardPolicy`] it carries decides duplicate handling. The same node
//! code acts as source (originates RREQs, collects RREPs, sends probe
//! data), intermediate (forwards per policy / source route), and
//! destination (collects routes over the collection window, replies).
//!
//! All message handling is factored into `handle_*` methods that report
//! what they did via [`RreqAction`]/[`DataAction`], so that wrapper
//! behaviours (the attack models in `manet-attacks`) can delegate to the
//! normal logic and react to it — e.g. tunnel every RREQ copy the node
//! forwards — without duplicating protocol code.

use crate::packet::{AckPkt, DataPkt, RerrPkt, RoutingMsg, Rrep, Rreq, RreqId};
use crate::policy::{DestinationAccept, ForwardDecision, ForwardPolicy, ProtocolKind};
use crate::route::{select_disjoint, Route};
use manet_sim::{Behavior, Channel, Ctx, Link, NodeId, SimDuration};
use std::collections::{HashMap, HashSet, VecDeque};

/// Timer key tags (upper bits) used by [`RouterNode`].
pub mod timer {
    /// Originate the next queued route discovery.
    pub const START_DISCOVERY: u64 = 1 << 63;
    /// Destination collection window expired; low bits carry the slot.
    pub const COLLECT: u64 = 1 << 62;
    /// Send the next queued data packet.
    pub const SEND_DATA: u64 = 1 << 61;
    /// Mask extracting the tag.
    pub const TAG_MASK: u64 = START_DISCOVERY | COLLECT | SEND_DATA;
}

/// Router configuration; one copy per node (cheap, `Copy`-ish sizes).
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Which protocol this node speaks.
    pub protocol: ProtocolKind,
    /// How long a multipath destination keeps collecting after the first
    /// RREQ copy — the paper's "wait certain amount of time (a design
    /// parameter) after receiving the first RREQ".
    pub collection_window: SimDuration,
    /// Per-discovery duplicate-forward cap (see [`ForwardPolicy`]).
    pub max_forwards: u32,
    /// How many (maximally disjoint) routes a multipath destination
    /// returns to the source via RREP.
    pub rrep_routes: usize,
    /// Use the reference (pre-overhaul `HashMap`/`HashSet`) stores in
    /// [`ForwardPolicy`] and [`DestinationAccept`] instead of the scratch
    /// stores. Slower; exists for the differential harness
    /// (`tests/differential_hotpath.rs`).
    pub reference_stores: bool,
}

impl RouterConfig {
    /// Defaults for `protocol`: 200 ms window, cap 64, 3 RREPs.
    pub fn new(protocol: ProtocolKind) -> Self {
        RouterConfig {
            protocol,
            collection_window: SimDuration::from_millis(200),
            max_forwards: 64,
            rrep_routes: 3,
            reference_stores: false,
        }
    }

    /// Builder-style switch to the reference policy stores.
    pub fn with_reference_stores(mut self) -> Self {
        self.reference_stores = true;
        self
    }
}

/// What `handle_rreq` did with an arriving copy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RreqAction {
    /// The copy was rebroadcast; the extended RREQ is returned so wrappers
    /// can mirror it (e.g. into a wormhole tunnel).
    Forwarded(Rreq),
    /// This node is the destination and recorded the copy as a route.
    RecordedRoute(Route),
    /// This node is the destination but its acceptance rule rejected the
    /// copy (AOMDV per-last-hop rule).
    RejectedAtDestination,
    /// Dropped by the forwarding policy (duplicate, loop, hop bound, cap).
    Dropped,
}

/// What `handle_data` did with an arriving data packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DataAction {
    /// Forwarded to the next hop on the source route.
    Forwarded(NodeId),
    /// This node is the destination; an ACK was sent back.
    DeliveredAndAcked,
    /// The next hop is not reachable (no radio link, no tunnel): dropped.
    NoNextHop,
    /// The packet does not list this node on its route: dropped.
    NotOnRoute,
}

/// Per-node statistics beyond the engine's tx/rx counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// RREQ copies rebroadcast.
    pub rreqs_forwarded: u64,
    /// RREQ copies dropped by policy.
    pub rreqs_dropped: u64,
    /// Data packets forwarded.
    pub data_forwarded: u64,
    /// Data packets dropped for lack of a usable next hop.
    pub data_no_next_hop: u64,
}

/// The behaviour of one routing node.
#[derive(Debug)]
pub struct RouterNode {
    id: NodeId,
    cfg: RouterConfig,
    policy: ForwardPolicy,
    dest_accept: DestinationAccept,

    // --- source state ---
    next_seq: u32,
    pending_discoveries: VecDeque<NodeId>,
    /// Routes received back via RREP, in arrival order.
    source_routes: Vec<Route>,

    // --- destination state ---
    /// Copies collected per open discovery window.
    collecting: HashMap<RreqId, Vec<Route>>,
    /// Window timer slots → discovery ids.
    window_slots: Vec<RreqId>,
    /// Finalized route sets (window closed), in completion order.
    finalized: Vec<(RreqId, Vec<Route>)>,

    // --- data plane ---
    pending_data: VecDeque<DataPkt>,
    /// Sequence numbers of data packets this node originated and saw ACKed.
    acked: HashSet<u32>,
    /// Links reported broken via RERR (this node was the source).
    broken_links: Vec<Link>,

    /// Out-of-band link: `(peer, one-way latency)`. `None` for ordinary
    /// nodes; the attack layer sets it on wormhole endpoints so that
    /// RREP/data forwarding across the tunneled "link" works.
    oob: Option<(NodeId, SimDuration)>,

    /// Transmission latency scale applied to this node's broadcasts.
    /// 1.0 for honest radios; < 1 models a node that skips the randomized
    /// MAC backoff (the rushing attack); > 1 a slow/congested node.
    latency_scale: f64,

    /// Local statistics.
    pub stats: RouterStats,
}

impl RouterNode {
    /// A router for node `id` with the given configuration.
    pub fn new(id: NodeId, cfg: RouterConfig) -> Self {
        let mut policy = ForwardPolicy::with_max_forwards(cfg.protocol, cfg.max_forwards);
        let mut dest_accept = DestinationAccept::default();
        if cfg.reference_stores {
            policy.use_reference_store();
            dest_accept.use_reference_store();
        }
        RouterNode {
            id,
            cfg,
            policy,
            dest_accept,
            next_seq: 0,
            pending_discoveries: VecDeque::new(),
            source_routes: Vec::new(),
            collecting: HashMap::new(),
            window_slots: Vec::new(),
            finalized: Vec::new(),
            pending_data: VecDeque::new(),
            acked: HashSet::new(),
            broken_links: Vec::new(),
            oob: None,
            latency_scale: 1.0,
            stats: RouterStats::default(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The protocol in use.
    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    /// Configure the out-of-band link (wormhole tunnel endpoint).
    pub fn set_out_of_band(&mut self, peer: NodeId, latency: SimDuration) {
        self.oob = Some((peer, latency));
    }

    /// The out-of-band peer, if any.
    pub fn out_of_band(&self) -> Option<(NodeId, SimDuration)> {
        self.oob
    }

    /// Set the broadcast latency scale (see the field docs; used by the
    /// rushing-attack model).
    pub fn set_latency_scale(&mut self, scale: f64) {
        assert!(scale > 0.0 && scale.is_finite());
        self.latency_scale = scale;
    }

    /// The broadcast latency scale in effect.
    pub fn latency_scale(&self) -> f64 {
        self.latency_scale
    }

    /// Queue a route discovery towards `dst`; it starts when a
    /// [`timer::START_DISCOVERY`] timer fires at this node. Returns the id
    /// the discovery will use.
    pub fn queue_discovery(&mut self, dst: NodeId) -> RreqId {
        let id = RreqId {
            src: self.id,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.pending_discoveries.push_back(dst);
        id
    }

    /// Queue a source-routed data packet (probe); it is sent when a
    /// [`timer::SEND_DATA`] timer fires at this node.
    pub fn queue_data(&mut self, route: Route, seq: u32) {
        self.pending_data.push_back(DataPkt { route, seq });
    }

    /// Routes this node received back via RREP (it was the source).
    pub fn source_routes(&self) -> &[Route] {
        &self.source_routes
    }

    /// Finalized destination route sets, one per completed discovery.
    pub fn finalized(&self) -> &[(RreqId, Vec<Route>)] {
        &self.finalized
    }

    /// All routes of the first finalized discovery — the "route set R from
    /// one route discovery" SAM analyzes.
    pub fn first_route_set(&self) -> Option<&[Route]> {
        self.finalized.first().map(|(_, v)| v.as_slice())
    }

    /// The finalized route set of a specific discovery, if its window has
    /// closed at this node.
    pub fn routes_for(&self, id: RreqId) -> Option<&[Route]> {
        self.finalized
            .iter()
            .find(|(fid, _)| *fid == id)
            .map(|(_, v)| v.as_slice())
    }

    /// Whether the data packet `seq` originated here was ACKed end-to-end.
    pub fn was_acked(&self, seq: u32) -> bool {
        self.acked.contains(&seq)
    }

    /// Links reported broken to this node (as a source) via RERR, in
    /// arrival order.
    pub fn broken_links(&self) -> &[Link] {
        &self.broken_links
    }

    /// Number of distinct ACKed sequence numbers.
    pub fn acked_count(&self) -> usize {
        self.acked.len()
    }

    // ------------------------------------------------------------------
    // Message handling (shared with wrapper behaviours)
    // ------------------------------------------------------------------

    /// Process an arriving RREQ copy per the forwarding policy / the
    /// destination acceptance rule.
    pub fn handle_rreq(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, rreq: Rreq) -> RreqAction {
        if rreq.dst == self.id {
            // Destination: record, never forward.
            if !self.dest_accept.accept(self.cfg.protocol, &rreq) {
                return RreqAction::RejectedAtDestination;
            }
            let mut nodes = rreq.path.to_vec();
            nodes.push(self.id);
            let route = match Route::new(nodes) {
                Ok(r) => r,
                // A copy that already visited the destination cannot occur
                // (the destination never forwards), but stay robust.
                Err(_) => return RreqAction::RejectedAtDestination,
            };
            let first_copy = !self.collecting.contains_key(&rreq.id);
            self.collecting
                .entry(rreq.id)
                .or_default()
                .push(route.clone());
            if first_copy {
                let slot = self.window_slots.len() as u64;
                self.window_slots.push(rreq.id);
                ctx.set_timer(self.cfg.collection_window, timer::COLLECT | slot);
            }
            // Classic DSR replies to every copy immediately; multipath
            // protocols reply once the window closes.
            if self.cfg.protocol == ProtocolKind::Dsr {
                self.send_rrep(ctx, rreq.id, route.clone());
            }
            return RreqAction::RecordedRoute(route);
        }

        match self.policy.decide(self.id, &rreq) {
            ForwardDecision::Forward => {
                let extended = rreq.extended(self.id);
                self.stats.rreqs_forwarded += 1;
                ctx.broadcast_scaled(RoutingMsg::Rreq(extended.clone()), self.latency_scale);
                RreqAction::Forwarded(extended)
            }
            ForwardDecision::Drop => {
                self.stats.rreqs_dropped += 1;
                RreqAction::Dropped
            }
        }
    }

    /// Process an arriving RREP: record it if we are the source, otherwise
    /// relay it towards the source.
    pub fn handle_rrep(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, rrep: Rrep) {
        if rrep.route.src() == self.id {
            self.source_routes.push(rrep.route);
            return;
        }
        if let Some(prev) = rrep.route.prev_hop(self.id) {
            self.send_towards(ctx, prev, RoutingMsg::Rrep(rrep));
        }
        // A node not on the route silently ignores a stray RREP.
    }

    /// Process an arriving (or originated) data packet.
    pub fn handle_data(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, data: DataPkt) -> DataAction {
        if data.route.dst() == self.id {
            let ack = AckPkt {
                route: data.route.reversed(),
                seq: data.seq,
            };
            if let Some(next) = ack.route.next_hop(self.id) {
                self.send_towards(ctx, next, RoutingMsg::Ack(ack));
            }
            return DataAction::DeliveredAndAcked;
        }
        let Some(next) = data.route.next_hop(self.id) else {
            return DataAction::NotOnRoute;
        };
        if self.can_reach(ctx, next) {
            self.stats.data_forwarded += 1;
            self.send_towards(ctx, next, RoutingMsg::Data(data));
            DataAction::Forwarded(next)
        } else {
            self.stats.data_no_next_hop += 1;
            // DSR-style route maintenance: report the broken hop back to
            // the source (unless we *are* the source, which learns
            // directly).
            if data.route.src() == self.id {
                self.broken_links.push(Link::new(self.id, next));
                self.source_routes
                    .retain(|r| !r.contains_link(Link::new(self.id, next)));
            } else {
                let rerr = RerrPkt {
                    route: data.route.clone(),
                    broken_from: self.id,
                    broken_to: next,
                };
                if let Some(prev) = data.route.prev_hop(self.id) {
                    if self.can_reach(ctx, prev) {
                        self.send_towards(ctx, prev, RoutingMsg::Rerr(rerr));
                    }
                }
            }
            DataAction::NoNextHop
        }
    }

    /// Process an arriving RERR: record it if we are the route's source,
    /// otherwise relay it towards the source.
    pub fn handle_rerr(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, rerr: RerrPkt) {
        if rerr.route.src() == self.id {
            let broken = Link::new(rerr.broken_from, rerr.broken_to);
            self.broken_links.push(broken);
            // Drop every known route that crosses the dead link.
            self.source_routes.retain(|r| !r.contains_link(broken));
            return;
        }
        if let Some(prev) = rerr.route.prev_hop(self.id) {
            if self.can_reach(ctx, prev) {
                self.send_towards(ctx, prev, RoutingMsg::Rerr(rerr));
            }
        }
    }

    /// Process an arriving ACK: record it if we originated the probe,
    /// otherwise relay it.
    pub fn handle_ack(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, ack: AckPkt) {
        if ack.route.dst() == self.id {
            self.acked.insert(ack.seq);
            return;
        }
        if let Some(next) = ack.route.next_hop(self.id) {
            if self.can_reach(ctx, next) {
                self.send_towards(ctx, next, RoutingMsg::Ack(ack));
            }
        }
    }

    /// Fire a timer (shared with wrapper behaviours).
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, key: u64) {
        match key & timer::TAG_MASK {
            timer::START_DISCOVERY => {
                if let Some(dst) = self.pending_discoveries.pop_front() {
                    // The seq consumed at queue time is next_seq-1 for the
                    // most recent queue_discovery; replay in FIFO order.
                    let seq = self.next_seq - self.pending_discoveries.len() as u32 - 1;
                    let rreq = Rreq {
                        id: RreqId { src: self.id, seq },
                        dst,
                        path: vec![self.id].into(),
                    };
                    ctx.broadcast_scaled(RoutingMsg::Rreq(rreq), self.latency_scale);
                }
            }
            timer::COLLECT => {
                let slot = (key & !timer::TAG_MASK) as usize;
                if let Some(&id) = self.window_slots.get(slot) {
                    let routes = self.collecting.remove(&id).unwrap_or_default();
                    // Multipath destinations reply along the selected
                    // (maximally disjoint) routes once the window closes.
                    if self.cfg.protocol.is_multipath() {
                        for route in select_disjoint(&routes, self.cfg.rrep_routes) {
                            self.send_rrep(ctx, id, route);
                        }
                    }
                    self.finalized.push((id, routes));
                }
            }
            timer::SEND_DATA => {
                if let Some(data) = self.pending_data.pop_front() {
                    self.handle_data(ctx, data);
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn send_rrep(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, id: RreqId, route: Route) {
        if let Some(prev) = route.prev_hop(self.id) {
            self.send_towards(ctx, prev, RoutingMsg::Rrep(Rrep { id, route }));
        }
    }

    /// Whether `next` can be addressed from here (radio neighbour or
    /// out-of-band peer).
    fn can_reach(&self, ctx: &Ctx<'_, RoutingMsg>, next: NodeId) -> bool {
        ctx.topology().are_neighbors(self.id, next) || self.oob.map(|(p, _)| p) == Some(next)
    }

    /// Unicast over the radio if `next` is a neighbour, else over the
    /// out-of-band tunnel if configured, else drop silently.
    fn send_towards(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, next: NodeId, msg: RoutingMsg) {
        if ctx.topology().are_neighbors(self.id, next) {
            ctx.unicast(next, msg);
        } else if let Some((peer, lat)) = self.oob {
            if peer == next {
                ctx.tunnel(peer, lat, msg);
            }
        }
    }
}

impl Behavior for RouterNode {
    type Msg = RoutingMsg;

    fn on_receive(
        &mut self,
        ctx: &mut Ctx<'_, RoutingMsg>,
        _from: NodeId,
        _channel: Channel,
        msg: RoutingMsg,
    ) {
        match msg {
            RoutingMsg::Rreq(rreq) => {
                self.handle_rreq(ctx, rreq);
            }
            RoutingMsg::Rrep(rrep) => self.handle_rrep(ctx, rrep),
            RoutingMsg::Data(data) => {
                self.handle_data(ctx, data);
            }
            RoutingMsg::Ack(ack) => self.handle_ack(ctx, ack),
            RoutingMsg::Rerr(rerr) => self.handle_rerr(ctx, rerr),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, key: u64) {
        self.handle_timer(ctx, key);
    }
}

/// Access to the underlying router inside any (possibly wrapped) behaviour
/// — what the discovery drivers use to queue work and read results.
pub trait RouterAccess {
    /// The wrapped router, read-only.
    fn router(&self) -> &RouterNode;
    /// The wrapped router, mutable.
    fn router_mut(&mut self) -> &mut RouterNode;
}

impl RouterAccess for RouterNode {
    fn router(&self) -> &RouterNode {
        self
    }
    fn router_mut(&mut self) -> &mut RouterNode {
        self
    }
}
