//! # manet-routing — on-demand routing protocols for ad hoc networks
//!
//! The protocols the SAM paper simulates, implemented over the
//! `manet-sim` discrete-event engine:
//!
//! * **MR** — the paper's on-demand multi-path protocol (SMR without the
//!   incoming-link rule; "it may find more routes than SMR"),
//! * **DSR** — the single-path baseline,
//! * **SMR** — Split Multipath Routing proper (Lee & Gerla), and
//! * **AOMDV-flavoured** multipath (the paper's future-work protocol).
//!
//! All four share one node implementation, [`node::RouterNode`],
//! parameterized by a [`policy::ForwardPolicy`]; the protocol differences
//! are confined to duplicate-RREQ handling ([`policy`]) and destination
//! acceptance. [`discovery::Session`] drives discoveries and SAM's step-2
//! probe tests over any [`manet_sim::NetworkPlan`].
//!
//! ```
//! use manet_routing::prelude::*;
//! use manet_sim::prelude::*;
//!
//! let plan = uniform_grid(4, 4, 1);
//! let out = run_discovery(&plan, ProtocolKind::Mr, plan.src_pool[0], plan.dst_pool[0], 1);
//! assert!(out.routes.len() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod discovery;
pub mod node;
pub mod packet;
pub mod policy;
pub mod route;

/// One-stop imports for routing users.
pub mod prelude {
    pub use crate::cache::RouteCache;
    pub use crate::discovery::{
        run_discovery, run_discovery_with_config, DiscoveryOutcome, ProbeOutcome, Session,
        DEFAULT_MAX_WAIT,
    };
    pub use crate::node::{
        timer, DataAction, RouterAccess, RouterConfig, RouterNode, RouterStats, RreqAction,
    };
    pub use crate::packet::{AckPkt, DataPkt, RerrPkt, RoutingMsg, Rrep, Rreq, RreqId};
    pub use crate::policy::{DestinationAccept, ForwardDecision, ForwardPolicy, ProtocolKind};
    pub use crate::route::{select_disjoint, Route, RouteError};
}

pub use prelude::*;
