//! Source routes and route-set utilities.

use manet_sim::{Link, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// A loop-free source route from a source to a destination, inclusive of
/// both endpoints.
///
/// Invariants enforced at construction: at least two nodes, and no node
/// repeated (source routing is loop-free by definition — a RREQ is never
/// forwarded by a node already on its path).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Route(Vec<NodeId>);

/// Error building a [`Route`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// Fewer than two nodes.
    TooShort,
    /// A node appears twice.
    Loop(NodeId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::TooShort => write!(f, "route has fewer than two nodes"),
            RouteError::Loop(n) => write!(f, "route visits {n} twice"),
        }
    }
}

impl std::error::Error for RouteError {}

impl Route {
    /// Validate and build a route.
    pub fn new(nodes: Vec<NodeId>) -> Result<Self, RouteError> {
        if nodes.len() < 2 {
            return Err(RouteError::TooShort);
        }
        let mut seen = HashSet::with_capacity(nodes.len());
        for &n in &nodes {
            if !seen.insert(n) {
                return Err(RouteError::Loop(n));
            }
        }
        Ok(Route(nodes))
    }

    /// The source (first node).
    pub fn src(&self) -> NodeId {
        self.0[0]
    }

    /// The destination (last node).
    pub fn dst(&self) -> NodeId {
        *self.0.last().expect("route is non-empty")
    }

    /// Number of hops (links), i.e. `len − 1`.
    pub fn hops(&self) -> usize {
        self.0.len() - 1
    }

    /// The node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.0
    }

    /// Whether `n` is on the route.
    pub fn contains(&self, n: NodeId) -> bool {
        self.0.contains(&n)
    }

    /// Iterate the route's links as undirected [`Link`]s.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        self.0.windows(2).map(|w| Link::new(w[0], w[1]))
    }

    /// Whether the route traverses `link` (in either direction).
    pub fn contains_link(&self, link: Link) -> bool {
        self.links().any(|l| l == link)
    }

    /// Number of links shared with `other`.
    pub fn shared_links(&self, other: &Route) -> usize {
        let mine: HashSet<Link> = self.links().collect();
        other.links().filter(|l| mine.contains(l)).count()
    }

    /// Whether the two routes share no link (link-disjoint).
    pub fn link_disjoint(&self, other: &Route) -> bool {
        self.shared_links(other) == 0
    }

    /// Whether the two routes share no intermediate node (node-disjoint;
    /// endpoints are expected to coincide and are ignored).
    pub fn node_disjoint(&self, other: &Route) -> bool {
        let mine: HashSet<NodeId> = self.0[1..self.0.len() - 1].iter().copied().collect();
        !other.0[1..other.0.len() - 1]
            .iter()
            .any(|n| mine.contains(n))
    }

    /// The position of `n` on the route, if present.
    pub fn position(&self, n: NodeId) -> Option<usize> {
        self.0.iter().position(|&x| x == n)
    }

    /// Next hop after `n` towards the destination.
    pub fn next_hop(&self, n: NodeId) -> Option<NodeId> {
        self.position(n).and_then(|i| self.0.get(i + 1)).copied()
    }

    /// Next hop after `n` towards the source (used by ACKs/RREPs flowing
    /// backwards).
    pub fn prev_hop(&self, n: NodeId) -> Option<NodeId> {
        match self.position(n) {
            Some(i) if i > 0 => Some(self.0[i - 1]),
            _ => None,
        }
    }

    /// The same route traversed destination→source.
    pub fn reversed(&self) -> Route {
        let mut v = self.0.clone();
        v.reverse();
        Route(v)
    }

    /// Consume into the node vector.
    pub fn into_nodes(self) -> Vec<NodeId> {
        self.0
    }
}

impl fmt::Debug for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, n) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "→")?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Greedy maximally-disjoint route selection, the strategy SMR prescribes
/// for choosing which discovered routes to actually use and which the SAM
/// procedure uses to pick paths to feed back to the source.
///
/// Picks the shortest route first, then repeatedly the route sharing the
/// fewest links with the already-picked set (ties broken by hop count,
/// then by discovery order), up to `k` routes.
pub fn select_disjoint(routes: &[Route], k: usize) -> Vec<Route> {
    if routes.is_empty() || k == 0 {
        return Vec::new();
    }
    let mut remaining: Vec<&Route> = routes.iter().collect();
    remaining.sort_by_key(|r| r.hops());
    let mut picked: Vec<Route> = vec![remaining.remove(0).clone()];
    let mut picked_links: HashSet<Link> = picked[0].links().collect();

    while picked.len() < k && !remaining.is_empty() {
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let overlap = r.links().filter(|l| picked_links.contains(l)).count();
                (i, (overlap, r.hops()))
            })
            .min_by_key(|&(_, score)| score)
            .expect("remaining non-empty");
        let chosen = remaining.remove(best_idx).clone();
        picked_links.extend(chosen.links());
        picked.push(chosen);
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(Route::new(vec![NodeId(1)]), Err(RouteError::TooShort));
        assert_eq!(
            Route::new(vec![NodeId(1), NodeId(2), NodeId(1)]),
            Err(RouteError::Loop(NodeId(1)))
        );
        assert!(Route::new(vec![NodeId(1), NodeId(2)]).is_ok());
    }

    #[test]
    fn endpoints_and_hops() {
        let route = r(&[3, 5, 7, 9]);
        assert_eq!(route.src(), NodeId(3));
        assert_eq!(route.dst(), NodeId(9));
        assert_eq!(route.hops(), 3);
        assert_eq!(route.links().count(), 3);
    }

    #[test]
    fn link_membership_is_direction_insensitive() {
        let route = r(&[1, 2, 3]);
        assert!(route.contains_link(Link::new(NodeId(2), NodeId(1))));
        assert!(route.contains_link(Link::new(NodeId(3), NodeId(2))));
        assert!(!route.contains_link(Link::new(NodeId(1), NodeId(3))));
    }

    #[test]
    fn hop_navigation() {
        let route = r(&[1, 2, 3]);
        assert_eq!(route.next_hop(NodeId(1)), Some(NodeId(2)));
        assert_eq!(route.next_hop(NodeId(3)), None);
        assert_eq!(route.prev_hop(NodeId(3)), Some(NodeId(2)));
        assert_eq!(route.prev_hop(NodeId(1)), None);
        assert_eq!(route.next_hop(NodeId(9)), None);
    }

    #[test]
    fn reversal_swaps_endpoints_but_keeps_links() {
        let route = r(&[1, 2, 3, 4]);
        let rev = route.reversed();
        assert_eq!(rev.src(), NodeId(4));
        assert_eq!(rev.dst(), NodeId(1));
        let a: HashSet<Link> = route.links().collect();
        let b: HashSet<Link> = rev.links().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn disjointness() {
        let a = r(&[0, 1, 2, 9]);
        let b = r(&[0, 3, 4, 9]);
        let c = r(&[0, 1, 4, 9]);
        assert!(a.link_disjoint(&b));
        assert!(a.node_disjoint(&b));
        assert!(!a.link_disjoint(&c));
        assert!(!b.node_disjoint(&c));
        assert_eq!(a.shared_links(&c), 1);
    }

    #[test]
    fn select_disjoint_prefers_shortest_then_disjoint() {
        let routes = vec![
            r(&[0, 3, 4, 9]), // 3 hops, shares link 0-3 with the shortest
            r(&[0, 3, 9]),    // 2 hops — must be picked first
            r(&[0, 5, 6, 9]), // 3 hops, fully disjoint
        ];
        let picked = select_disjoint(&routes, 2);
        assert_eq!(picked[0], routes[1]);
        assert_eq!(
            picked[1], routes[2],
            "disjoint route preferred over overlapping one"
        );
    }

    #[test]
    fn select_disjoint_handles_edges() {
        assert!(select_disjoint(&[], 3).is_empty());
        let one = vec![r(&[0, 1])];
        assert_eq!(select_disjoint(&one, 0).len(), 0);
        assert_eq!(select_disjoint(&one, 5).len(), 1);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", r(&[1, 2])), "[n1→n2]");
    }
}
