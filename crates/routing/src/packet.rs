//! Wire messages shared by all routing protocols in the suite.

use crate::route::Route;
use manet_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Globally unique identifier of one route discovery: the originator plus
/// its per-source sequence number (exactly DSR/AODV's RREQ id).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RreqId {
    /// Originating source.
    pub src: NodeId,
    /// Source-local sequence number.
    pub seq: u32,
}

/// A route request, flooded from the source.
///
/// `path` accumulates the nodes traversed so far, starting with the source
/// itself; a node appends itself before rebroadcasting. The hop count the
/// protocols compare is therefore `path.len() − 1` at reception.
///
/// The path is a shared slice: a broadcast fans one RREQ copy out to
/// every neighbour, and with `Arc<[NodeId]>` each of those per-neighbour
/// clones is a refcount bump instead of a fresh allocation — the single
/// hottest allocation site in a flood. Only [`Rreq::extended`] (once per
/// forward, not once per delivery) builds a new path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rreq {
    /// Discovery id.
    pub id: RreqId,
    /// The node being searched for.
    pub dst: NodeId,
    /// Accumulated path, source first.
    pub path: Arc<[NodeId]>,
}

impl Rreq {
    /// Hop count of the accumulated path.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// The node that (re)broadcast this copy.
    pub fn last_hop(&self) -> NodeId {
        *self.path.last().expect("RREQ path is never empty")
    }

    /// A copy extended with `node` appended, ready for rebroadcast.
    pub fn extended(&self, node: NodeId) -> Rreq {
        let mut path = Vec::with_capacity(self.path.len() + 1);
        path.extend_from_slice(&self.path);
        path.push(node);
        Rreq {
            id: self.id,
            dst: self.dst,
            path: path.into(),
        }
    }
}

/// A route reply, unicast backwards along the discovered route.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rrep {
    /// Discovery this reply answers.
    pub id: RreqId,
    /// The full route being reported (source→destination order).
    pub route: Route,
}

/// A source-routed data packet (used by SAM's step-2 probe test and by the
/// blackhole/grayhole models).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPkt {
    /// The route the packet must follow (source→destination order).
    pub route: Route,
    /// Source-local sequence number, echoed by the ACK.
    pub seq: u32,
}

/// End-to-end acknowledgment for a [`DataPkt`], travelling the reversed
/// route.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AckPkt {
    /// Reversed route the ACK follows (destination→source order).
    pub route: Route,
    /// Sequence number of the acknowledged data packet.
    pub seq: u32,
}

/// A route error: a forwarder on `route` could not reach its next hop,
/// reporting `broken` back to the route's source (DSR-style route
/// maintenance).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RerrPkt {
    /// The route the undeliverable packet was following.
    pub route: Route,
    /// The unreachable hop, as `(from, to)` in route direction.
    pub broken_from: NodeId,
    /// The node that could not be reached.
    pub broken_to: NodeId,
}

/// The union wire format.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoutingMsg {
    /// Route request (broadcast flood).
    Rreq(Rreq),
    /// Route reply (unicast backwards).
    Rrep(Rrep),
    /// Source-routed data.
    Data(DataPkt),
    /// End-to-end data acknowledgment.
    Ack(AckPkt),
    /// Route error (unicast backwards towards the source).
    Rerr(RerrPkt),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rreq_extension_appends_and_counts_hops() {
        let q = Rreq {
            id: RreqId {
                src: NodeId(0),
                seq: 1,
            },
            dst: NodeId(9),
            path: vec![NodeId(0)].into(),
        };
        assert_eq!(q.hops(), 0);
        assert_eq!(q.last_hop(), NodeId(0));
        let q2 = q.extended(NodeId(4));
        assert_eq!(q2.hops(), 1);
        assert_eq!(q2.last_hop(), NodeId(4));
        assert_eq!(&q2.path[..], [NodeId(0), NodeId(4)]);
        // The original is untouched.
        assert_eq!(&q.path[..], [NodeId(0)]);
    }

    #[test]
    fn rreq_ids_compare_by_source_and_seq() {
        let a = RreqId {
            src: NodeId(1),
            seq: 7,
        };
        let b = RreqId {
            src: NodeId(1),
            seq: 8,
        };
        assert_ne!(a, b);
        assert_eq!(
            a,
            RreqId {
                src: NodeId(1),
                seq: 7
            }
        );
    }
}
