//! Integration tests for the non-wormhole attacker roles: rushing and
//! early-reply fabrication (paper §IV's blackhole discussion).

use manet_attacks::prelude::*;
use manet_routing::prelude::*;
use manet_sim::prelude::*;

fn grid_session(wiring: &AttackWiring, seed: u64) -> (NetworkPlan, Session<AttackNode>) {
    let plan = uniform_grid(6, 6, 1);
    let session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        wiring,
        LatencyModel::default(),
        seed,
    );
    (plan, session)
}

#[test]
fn rusher_wins_the_first_copy_race() {
    // Place a rusher in the middle of the grid: with a 10x speed
    // advantage, the share of collected routes passing through it should
    // far exceed its share in the honest system.
    let rusher = grid_node(6, 2, 2);
    let plan = uniform_grid(6, 6, 1);
    let src = plan.src_pool[2];
    let dst = plan.dst_pool[2];

    let through = |wiring: &AttackWiring, seed: u64| -> (f64, usize) {
        let (_, mut session) = grid_session(wiring, seed);
        let out = session.discover(src, dst, DEFAULT_MAX_WAIT);
        let hit = out.routes.iter().filter(|r| r.contains(rusher)).count();
        (
            hit as f64 / out.routes.len().max(1) as f64,
            out.routes.len(),
        )
    };

    let mut honest_sum = 0.0;
    let mut rushed_sum = 0.0;
    for seed in 0..5 {
        honest_sum += through(&AttackWiring::none(), seed).0;
        rushed_sum += through(&AttackWiring::none().with_rusher(rusher, 0.1), seed).0;
    }
    assert!(
        rushed_sum > honest_sum,
        "rushing share {rushed_sum:.2} should beat honest {honest_sum:.2}"
    );
}

#[test]
fn rusher_is_reported_as_attacker() {
    let wiring = AttackWiring::none().with_rusher(NodeId(5), 0.2);
    let node = wiring.build(RouterNode::new(
        NodeId(5),
        RouterConfig::new(ProtocolKind::Mr),
    ));
    assert!(node.is_attacker());
    assert_eq!(node.router().latency_scale(), 0.2);
    let legit = wiring.build(RouterNode::new(
        NodeId(6),
        RouterConfig::new(ProtocolKind::Mr),
    ));
    assert!(!legit.is_attacker());
}

#[test]
fn fabricator_poisons_the_source_with_a_fake_route() {
    // The fabricator claims adjacency to the destination; the source
    // receives a short fake route whose final hop does not exist.
    let fab = grid_node(6, 2, 3);
    let plan = uniform_grid(6, 6, 1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[5];
    assert!(
        !plan.topology.are_neighbors(fab, dst),
        "test needs the fabricated hop to be fake"
    );

    let wiring = AttackWiring::none().with_fabricator(fab);
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        3,
    );
    let out = session.discover(src, dst, DEFAULT_MAX_WAIT);

    // The source's RREP-derived routes include the fabricated one.
    let fake: Vec<&Route> = out
        .source_routes
        .iter()
        .filter(|r| r.contains(fab))
        .collect();
    assert!(
        !fake.is_empty(),
        "fabricated route should have reached the source; got {:?}",
        out.source_routes
    );
    let fake_route = fake[0].clone();
    assert_eq!(
        fake_route.prev_hop(dst),
        Some(fab),
        "fab claims to neighbour dst"
    );

    // SAM's step-2 probe test exposes it: data down the fake route never
    // arrives (the fabricator drops it; the fake hop doesn't exist).
    let probe = session.probe(
        &fake_route,
        5,
        SimDuration::from_millis(10),
        SimDuration::from_millis(500),
    );
    assert_eq!(probe.acked, 0, "fabricated route must fail the probe test");

    // An honest collected route still works.
    let honest = out
        .routes
        .iter()
        .find(|r| !r.contains(fab))
        .expect("honest routes exist")
        .clone();
    let probe = session.probe(
        &honest,
        5,
        SimDuration::from_millis(10),
        SimDuration::from_millis(500),
    );
    assert_eq!(probe.acked, 5, "honest route must pass the probe test");
}

#[test]
fn fabricator_never_forwards_the_flood() {
    let fab = grid_node(6, 2, 3);
    let plan = uniform_grid(6, 6, 1);
    let wiring = AttackWiring::none().with_fabricator(fab);
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        5,
    );
    let out = session.discover(plan.src_pool[1], plan.dst_pool[1], DEFAULT_MAX_WAIT);
    // No *collected* (destination-side) route passes through the
    // fabricator: it never rebroadcasts.
    for r in &out.routes {
        assert!(!r.contains(fab), "fabricator forwarded into {r}");
    }
    let stats = session.node(fab).attack_stats().expect("attacker");
    assert!(stats.rreps_fabricated >= 1, "it should have replied");
}

#[test]
fn mr_destination_routes_are_immune_to_fabrication() {
    // The paper's §IV point: MR's destination-side collection (SAM's
    // input!) never contains fabricated routes — only the source's RREP
    // view is poisoned, and step-2 probing cleans that.
    let fab = grid_node(6, 3, 2);
    let plan = uniform_grid(6, 6, 1);
    let wiring = AttackWiring::none().with_fabricator(fab);
    for seed in 0..4 {
        let out = run_attacked_discovery(
            &plan,
            ProtocolKind::Mr,
            &wiring,
            plan.src_pool[3],
            plan.dst_pool[3],
            seed,
        );
        for r in &out.routes {
            assert!(!r.contains(fab), "seed {seed}: fabricated node on {r}");
            for w in r.nodes().windows(2) {
                assert!(
                    plan.topology.are_neighbors(w[0], w[1]),
                    "fake hop in collected set"
                );
            }
        }
    }
}
