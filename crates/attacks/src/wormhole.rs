//! The wormhole attack model.
//!
//! Two colluding nodes share a fast out-of-band tunnel whose real length is
//! many radio hops. During route discovery they replay RREQs across the
//! tunnel, so routes through them advertise far fewer hops than any honest
//! route and win the source's preference. The paper's threat model ("the
//! wormhole nodes do not modify or fabricate packets") is preserved: the
//! attackers only *relay*.
//!
//! Two classic variants are implemented:
//!
//! * [`WormholeMode::Participation`] — the paper's setup: the endpoints
//!   take part in routing like ordinary nodes, so discovered routes
//!   contain the tunneled link *between the two attackers* ("a route is
//!   considered affected if it contains the tunneled link between the two
//!   attackers"; SAM localizes the attackers as that link's endpoints).
//! * [`WormholeMode::Hidden`] — an extension: the endpoints replay RREQs
//!   *verbatim* without appending themselves, so the route set shows an
//!   impossible one-hop link between a node near one endpoint and a node
//!   near the other. SAM's statistics still fire; the suspect link then
//!   names the attackers' neighbourhoods rather than the attackers.

use manet_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// How the wormhole endpoints present themselves to the network.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum WormholeMode {
    /// Endpoints participate in routing and appear on routes (paper mode).
    Participation,
    /// Endpoints replay verbatim and never appear on routes.
    Hidden,
}

/// Data-plane behaviour of a wormhole endpoint once routes are captured.
///
/// A pure wormhole relays everything (the attack is the *attraction* of
/// traffic); the paper notes the attackers "may perform various attacks,
/// such as the black hole attacks (by dropping all data packets) and grey
/// hole attacks (by selectively dropping data packets)" afterwards.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum DropPolicy {
    /// Forward all data (pure wormhole).
    Relay,
    /// Drop every data packet (blackhole).
    Blackhole,
    /// Drop each data packet independently with this probability
    /// (grayhole).
    Grayhole(f64),
}

impl DropPolicy {
    /// Sample a drop decision for one packet.
    pub fn drops(self, rng: &mut impl rand::Rng) -> bool {
        match self {
            DropPolicy::Relay => false,
            DropPolicy::Blackhole => true,
            DropPolicy::Grayhole(p) => rng.random_bool(p.clamp(0.0, 1.0)),
        }
    }
}

/// When the tunnel actually relays a captured RREQ — the smarter
/// attacker variants from the robustness study (Azer & El-Kassas's
/// catalogue of complex wormholes: selective forwarding, intermittent
/// tunnels). [`TunnelPolicy::Always`] reproduces the paper's attacker and
/// never draws from the RNG, so existing scenarios are bit-for-bit
/// unchanged.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum TunnelPolicy {
    /// Tunnel every captured RREQ (the paper's attacker).
    Always,
    /// Tunnel each captured RREQ independently with this probability —
    /// selective/probabilistic tunneling, diluting the link-frequency
    /// signature SAM keys on.
    Selective(f64),
    /// On/off wormhole: the tunnel relays only during the first `on_us`
    /// of every `period_us` window — a duty-cycled attacker that hides
    /// between bursts.
    DutyCycle {
        /// Window length (µs); must be positive to gate anything.
        period_us: u64,
        /// Active prefix of each window (µs).
        on_us: u64,
    },
}

impl TunnelPolicy {
    /// Whether a capture at `now` is tunneled. Draws from `rng` only for
    /// [`TunnelPolicy::Selective`] with `0 < p < 1` (determinism: the
    /// always/never/duty cases must not perturb the RNG stream).
    pub fn tunnels(self, now: SimTime, rng: &mut impl rand::Rng) -> bool {
        match self {
            TunnelPolicy::Always => true,
            TunnelPolicy::Selective(p) => {
                if p >= 1.0 {
                    true
                } else if p <= 0.0 {
                    false
                } else {
                    rng.random_bool(p)
                }
            }
            TunnelPolicy::DutyCycle { period_us, on_us } => {
                period_us == 0 || now.as_micros() % period_us < on_us
            }
        }
    }
}

/// Full configuration of one wormhole attack.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WormholeConfig {
    /// Presentation mode.
    pub mode: WormholeMode,
    /// One-way tunnel latency. The default (0.2 ms) is faster than a
    /// single radio hop, as a dedicated long-range/wired link would be.
    pub tunnel_latency: SimDuration,
    /// Post-capture data-plane behaviour.
    pub drop: DropPolicy,
    /// When the tunnel relays captured RREQs.
    pub tunneling: TunnelPolicy,
}

impl Default for WormholeConfig {
    fn default() -> Self {
        WormholeConfig {
            mode: WormholeMode::Participation,
            tunnel_latency: SimDuration::from_micros(200),
            drop: DropPolicy::Relay,
            tunneling: TunnelPolicy::Always,
        }
    }
}

impl WormholeConfig {
    /// Paper-mode wormhole that additionally blackholes data — the
    /// configuration SAM's step-2 probe test is designed to confirm.
    pub fn blackholing() -> Self {
        WormholeConfig {
            drop: DropPolicy::Blackhole,
            ..WormholeConfig::default()
        }
    }

    /// Hidden-mode wormhole.
    pub fn hidden() -> Self {
        WormholeConfig {
            mode: WormholeMode::Hidden,
            ..WormholeConfig::default()
        }
    }

    /// Paper-mode wormhole that tunnels each capture with probability `p`.
    pub fn selective(p: f64) -> Self {
        WormholeConfig {
            tunneling: TunnelPolicy::Selective(p),
            ..WormholeConfig::default()
        }
    }

    /// Paper-mode on/off wormhole (`on_us` active out of each
    /// `period_us`).
    pub fn duty_cycled(period_us: u64, on_us: u64) -> Self {
        WormholeConfig {
            tunneling: TunnelPolicy::DutyCycle { period_us, on_us },
            ..WormholeConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn drop_policy_extremes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert!(!DropPolicy::Relay.drops(&mut rng));
        assert!(DropPolicy::Blackhole.drops(&mut rng));
        assert!(!DropPolicy::Grayhole(0.0).drops(&mut rng));
        assert!(DropPolicy::Grayhole(1.0).drops(&mut rng));
    }

    #[test]
    fn grayhole_drops_roughly_at_rate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = DropPolicy::Grayhole(0.3);
        let drops = (0..10_000).filter(|_| p.drops(&mut rng)).count();
        assert!((2_700..3_300).contains(&drops), "drops={drops}");
    }

    #[test]
    fn grayhole_probability_is_clamped() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        // Out-of-range probabilities must not panic.
        assert!(DropPolicy::Grayhole(7.0).drops(&mut rng));
        assert!(!DropPolicy::Grayhole(-3.0).drops(&mut rng));
    }

    #[test]
    fn default_config_is_paper_mode_pure_relay() {
        let cfg = WormholeConfig::default();
        assert_eq!(cfg.mode, WormholeMode::Participation);
        assert_eq!(cfg.drop, DropPolicy::Relay);
        assert_eq!(cfg.tunneling, TunnelPolicy::Always);
        assert!(cfg.tunnel_latency < SimDuration::from_millis(1));
    }

    #[test]
    fn tunnel_policy_extremes_never_draw() {
        // Comparing RNG state before/after proves the deterministic
        // paths never touch the stream.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let before = rng.clone();
        let t = SimTime::from_micros(123);
        assert!(TunnelPolicy::Always.tunnels(t, &mut rng));
        assert!(TunnelPolicy::Selective(1.0).tunnels(t, &mut rng));
        assert!(!TunnelPolicy::Selective(0.0).tunnels(t, &mut rng));
        assert!(TunnelPolicy::DutyCycle {
            period_us: 1_000,
            on_us: 500
        }
        .tunnels(SimTime::from_micros(10_499), &mut rng));
        assert!(!TunnelPolicy::DutyCycle {
            period_us: 1_000,
            on_us: 500
        }
        .tunnels(SimTime::from_micros(10_500), &mut rng));
        // Zero period degenerates to always-on rather than dividing by 0.
        assert!(TunnelPolicy::DutyCycle {
            period_us: 0,
            on_us: 0
        }
        .tunnels(t, &mut rng));
        let mut after = before.clone();
        assert_eq!(
            rng.random_range(0..u64::MAX),
            after.random_range(0..u64::MAX),
            "none of the above may consume RNG state"
        );
    }

    #[test]
    fn selective_policy_fires_roughly_at_rate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = TunnelPolicy::Selective(0.7);
        let fired = (0..10_000)
            .filter(|_| p.tunnels(SimTime::ZERO, &mut rng))
            .count();
        assert!((6_700..7_300).contains(&fired), "fired={fired}");
    }
}
