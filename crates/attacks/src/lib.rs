//! # manet-attacks — routing-layer attack models
//!
//! The adversaries of the SAM paper, as behaviours over `manet-sim` /
//! `manet-routing`:
//!
//! * [`wormhole`] — the wormhole attack in the paper's participation mode
//!   and an extension hidden mode, single or multiple concurrent pairs,
//!   with optional blackhole/grayhole data-plane behaviour once routes are
//!   captured;
//! * [`node::AttackNode`] — the behaviour wrapper that lets honest routers
//!   and attackers coexist in one simulation;
//! * [`scenario`] — one-call drivers plus the paper's Table I "affected
//!   routes" criterion.
//!
//! ```
//! use manet_attacks::prelude::*;
//! use manet_routing::prelude::*;
//! use manet_sim::prelude::*;
//!
//! let plan = two_cluster(1);
//! let out = run_wormholed_discovery(
//!     &plan, ProtocolKind::Mr, WormholeConfig::default(),
//!     plan.src_pool[0], plan.dst_pool[0], 1,
//! );
//! let frac = affected_fraction(&out.routes, plan.attacker_pairs[0]);
//! assert!(frac > 0.5); // the cluster topology is fully captured
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod scenario;
pub mod wormhole;

/// One-stop imports for attack users.
pub mod prelude {
    pub use crate::node::{AttackNode, AttackStats, AttackWiring};
    pub use crate::scenario::{
        affected_fraction, affected_fraction_any, attack_session, run_attacked_discovery,
        run_wormholed_discovery, tunnel_link,
    };
    pub use crate::wormhole::{DropPolicy, TunnelPolicy, WormholeConfig, WormholeMode};
}

pub use prelude::*;
