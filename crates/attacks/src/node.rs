//! The attack-aware node behaviour.
//!
//! [`AttackNode`] wraps a normal [`RouterNode`] and adds the wormhole /
//! data-drop logic for nodes playing an attacker role. A vector of
//! `AttackNode`s is what the discovery [`Session`](manet_routing::Session)
//! runs; legitimate nodes pay only an enum-dispatch on each event.

use crate::wormhole::{WormholeConfig, WormholeMode};
use manet_routing::{Route, RouterAccess, RouterNode, RoutingMsg, Rrep, RreqAction};
use manet_sim::{Behavior, Channel, Ctx, NodeId, SimDuration};
use std::collections::HashSet;

/// Statistics recorded by an attacker endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttackStats {
    /// RREQ copies pushed into the tunnel.
    pub rreqs_tunneled: u64,
    /// RREQ copies replayed out of the tunnel (hidden mode rebroadcasts).
    pub rreqs_replayed: u64,
    /// Data packets dropped by the drop policy.
    pub data_dropped: u64,
    /// ACK packets dropped by the drop policy.
    pub acks_dropped: u64,
    /// RREPs fabricated (early-reply blackhole).
    pub rreps_fabricated: u64,
}

/// Role-specific state of one node.
#[derive(Debug)]
enum Role {
    /// An honest router.
    Legit,
    /// A wormhole endpoint tunnelling to `peer`.
    Wormhole {
        peer: NodeId,
        cfg: WormholeConfig,
        /// Fingerprints of RREQ copies already tunnelled/replayed, to stop
        /// replay ping-pong in hidden mode (and redundant tunnel traffic
        /// in participation mode).
        seen: HashSet<u64>,
        stats: AttackStats,
    },
    /// A rushing attacker (Hu/Perrig/Johnson '03, cited by the paper):
    /// forwards route requests per protocol but *without* the MAC backoff
    /// honest radios observe, so its copies win every first-arrival race.
    /// The speed itself is configured on the wrapped router's latency
    /// scale; the role tag exists for reporting.
    Rusher { stats: AttackStats },
    /// An early-reply blackhole (paper §IV): answers overheard RREQs with
    /// a fabricated RREP claiming to be one hop from the destination,
    /// never forwards the flood, and drops all data attracted this way.
    Fabricator {
        /// Fabricate at most one reply per discovery id fingerprint.
        seen: HashSet<u64>,
        stats: AttackStats,
    },
    /// A quarantined node: the IDS response module has isolated it, so
    /// the rest of the network neither forwards for it nor listens to it.
    /// Modelled as full inertness (it still physically receives frames —
    /// the rx counters tick — but never reacts).
    Isolated,
}

/// A node that may be honest or a wormhole endpoint.
#[derive(Debug)]
pub struct AttackNode {
    router: RouterNode,
    role: Role,
}

fn fingerprint(rreq: &manet_routing::Rreq) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    rreq.id.hash(&mut h);
    rreq.path.hash(&mut h);
    h.finish()
}

impl AttackNode {
    /// An honest node.
    pub fn legit(router: RouterNode) -> Self {
        AttackNode {
            router,
            role: Role::Legit,
        }
    }

    /// A wormhole endpoint tunnelling to `peer` with configuration `cfg`.
    ///
    /// In participation mode the router's out-of-band link is wired to the
    /// peer so RREP and data forwarding across the tunneled "link" work —
    /// the attackers *behave normally during routing*, as the paper's
    /// threat model requires.
    pub fn wormhole(mut router: RouterNode, peer: NodeId, cfg: WormholeConfig) -> Self {
        if cfg.mode == WormholeMode::Participation {
            router.set_out_of_band(peer, cfg.tunnel_latency);
        }
        AttackNode {
            router,
            role: Role::Wormhole {
                peer,
                cfg,
                seen: HashSet::new(),
                stats: AttackStats::default(),
            },
        }
    }

    /// A rushing attacker: its broadcasts go out at `scale` of the honest
    /// latency (e.g. 0.1 = ten times faster than anyone's backoff).
    pub fn rusher(mut router: RouterNode, scale: f64) -> Self {
        router.set_latency_scale(scale);
        AttackNode {
            router,
            role: Role::Rusher {
                stats: AttackStats::default(),
            },
        }
    }

    /// An early-reply blackhole (fabricated RREPs + data dropping).
    pub fn fabricator(router: RouterNode) -> Self {
        AttackNode {
            router,
            role: Role::Fabricator {
                seen: HashSet::new(),
                stats: AttackStats::default(),
            },
        }
    }

    /// A quarantined node (see [`Role::Isolated`]'s docs — inert).
    pub fn isolated(router: RouterNode) -> Self {
        AttackNode {
            router,
            role: Role::Isolated,
        }
    }

    /// Whether this node plays an attacker role.
    pub fn is_attacker(&self) -> bool {
        !matches!(self.role, Role::Legit | Role::Isolated)
    }

    /// Whether this node has been quarantined by the response module.
    pub fn is_isolated(&self) -> bool {
        matches!(self.role, Role::Isolated)
    }

    /// Attack statistics, if this node is an attacker.
    pub fn attack_stats(&self) -> Option<AttackStats> {
        match &self.role {
            Role::Wormhole { stats, .. }
            | Role::Rusher { stats }
            | Role::Fabricator { stats, .. } => Some(*stats),
            Role::Legit | Role::Isolated => None,
        }
    }

    fn handle_as_fabricator(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, msg: RoutingMsg) {
        let Role::Fabricator { seen, stats } = &mut self.role else {
            unreachable!("caller checked role");
        };
        match msg {
            RoutingMsg::Rreq(rreq) => {
                // Never forward the flood; instead claim "the destination
                // is my neighbour" by replying with the overheard path
                // extended through ourselves. One reply per discovery.
                let me = self.router.id();
                if rreq.dst == me || rreq.path.contains(&me) {
                    return;
                }
                let mut h = std::collections::hash_map::DefaultHasher::new();
                use std::hash::{Hash, Hasher};
                rreq.id.hash(&mut h);
                if !seen.insert(h.finish()) {
                    return;
                }
                let mut nodes = rreq.path.to_vec();
                let prev = rreq.last_hop();
                nodes.push(me);
                nodes.push(rreq.dst);
                if let Ok(route) = Route::new(nodes) {
                    stats.rreps_fabricated += 1;
                    ctx.unicast(prev, RoutingMsg::Rrep(Rrep { id: rreq.id, route }));
                }
            }
            // The blackhole part: attracted data (and its ACKs) die here.
            RoutingMsg::Data(data) => {
                if data.route.dst() == self.router.id() {
                    self.router.handle_data(ctx, data);
                } else if let Role::Fabricator { stats, .. } = &mut self.role {
                    stats.data_dropped += 1;
                }
            }
            RoutingMsg::Ack(ack) => {
                if ack.route.dst() == self.router.id() {
                    self.router.handle_ack(ctx, ack);
                } else if let Role::Fabricator { stats, .. } = &mut self.role {
                    stats.acks_dropped += 1;
                }
            }
            // Relay RREPs normally to stay inconspicuous…
            RoutingMsg::Rrep(rrep) => self.router.handle_rrep(ctx, rrep),
            // …but swallow route errors: they would expose the fake hop.
            RoutingMsg::Rerr(_) => {
                if let Role::Fabricator { stats, .. } = &mut self.role {
                    stats.acks_dropped += 1;
                }
            }
        }
    }

    fn handle_as_wormhole(
        &mut self,
        ctx: &mut Ctx<'_, RoutingMsg>,
        _from: NodeId,
        channel: Channel,
        msg: RoutingMsg,
    ) {
        let Role::Wormhole {
            peer,
            cfg,
            seen,
            stats,
        } = &mut self.role
        else {
            unreachable!("caller checked role");
        };
        match msg {
            RoutingMsg::Rreq(rreq) => match cfg.mode {
                WormholeMode::Participation => {
                    // Normal routing first; mirror every copy we forward
                    // into the tunnel. The peer receives the extended copy
                    // (…, me) and appends itself on rebroadcast, creating
                    // the me–peer link in recorded routes.
                    let action = self.router.handle_rreq(ctx, rreq);
                    if let RreqAction::Forwarded(extended) = action {
                        // The seen-check comes first so the tunnel policy is
                        // only consulted (and, for Selective, the RNG only
                        // drawn) on copies that would actually be tunneled.
                        if seen.insert(fingerprint(&extended)) {
                            let now = ctx.now();
                            if cfg.tunneling.tunnels(now, ctx.rng()) {
                                stats.rreqs_tunneled += 1;
                                ctx.tunnel(*peer, cfg.tunnel_latency, RoutingMsg::Rreq(extended));
                            }
                        }
                    }
                }
                WormholeMode::Hidden => {
                    // Verbatim replay: never append ourselves.
                    let fp = fingerprint(&rreq);
                    match channel {
                        Channel::Tunnel => {
                            if seen.insert(fp) {
                                stats.rreqs_replayed += 1;
                                ctx.broadcast(RoutingMsg::Rreq(rreq));
                            }
                        }
                        _ => {
                            // Gate only the tunnel ingress: an intermittent
                            // attacker still replays whatever arrives from
                            // its peer (suppressing the egress too would
                            // just double-count the same decision).
                            if seen.insert(fp) {
                                let now = ctx.now();
                                if cfg.tunneling.tunnels(now, ctx.rng()) {
                                    stats.rreqs_tunneled += 1;
                                    ctx.tunnel(*peer, cfg.tunnel_latency, RoutingMsg::Rreq(rreq));
                                }
                            }
                        }
                    }
                }
            },
            RoutingMsg::Data(data) => {
                // Post-capture data-plane attack: drop per policy, unless
                // the packet is addressed to us (an attacker receiving its
                // own probe would only reveal itself by not ACKing its own
                // traffic — it ACKs to blend in).
                if data.route.dst() != self.router.id() && cfg.drop.drops(ctx.rng()) {
                    stats.data_dropped += 1;
                    return;
                }
                self.router.handle_data(ctx, data);
            }
            RoutingMsg::Ack(ack) => {
                if ack.route.dst() != self.router.id() && cfg.drop.drops(ctx.rng()) {
                    stats.acks_dropped += 1;
                    return;
                }
                self.router.handle_ack(ctx, ack);
            }
            // Attackers behave normally during routing: RREPs and RERRs
            // are relayed faithfully (the tunnel crossing is handled by
            // the router's out-of-band link).
            RoutingMsg::Rrep(rrep) => self.router.handle_rrep(ctx, rrep),
            RoutingMsg::Rerr(rerr) => self.router.handle_rerr(ctx, rerr),
        }
    }
}

impl Behavior for AttackNode {
    type Msg = RoutingMsg;

    fn on_receive(
        &mut self,
        ctx: &mut Ctx<'_, RoutingMsg>,
        from: NodeId,
        channel: Channel,
        msg: RoutingMsg,
    ) {
        match self.role {
            // Rushers run the normal protocol; their speed advantage is
            // baked into the router's latency scale.
            Role::Legit | Role::Rusher { .. } => self.router.on_receive(ctx, from, channel, msg),
            Role::Wormhole { .. } => self.handle_as_wormhole(ctx, from, channel, msg),
            Role::Fabricator { .. } => self.handle_as_fabricator(ctx, msg),
            Role::Isolated => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, RoutingMsg>, key: u64) {
        if matches!(self.role, Role::Isolated) {
            return;
        }
        self.router.handle_timer(ctx, key);
    }
}

impl RouterAccess for AttackNode {
    fn router(&self) -> &RouterNode {
        &self.router
    }
    fn router_mut(&mut self) -> &mut RouterNode {
        &mut self.router
    }
}

/// Roles assigned to every node of a plan.
#[derive(Clone, Debug, Default)]
pub struct AttackWiring {
    /// `(endpoint, peer, config)` triples; both directions must be listed.
    endpoints: Vec<(NodeId, NodeId, WormholeConfig)>,
    /// `(node, latency scale)` rushing attackers.
    rushers: Vec<(NodeId, f64)>,
    /// Early-reply blackhole nodes.
    fabricators: Vec<NodeId>,
    /// Quarantined nodes (override every other role).
    isolated: Vec<NodeId>,
}

impl AttackWiring {
    /// No active attacks (the "normal system").
    pub fn none() -> Self {
        AttackWiring::default()
    }

    /// Activate the wormhole pairs of `plan` whose indices are in
    /// `active`, all with configuration `cfg`.
    pub fn from_plan(plan: &manet_sim::NetworkPlan, active: &[usize], cfg: WormholeConfig) -> Self {
        let mut endpoints = Vec::new();
        for &i in active {
            let pair = plan.attacker_pairs[i];
            endpoints.push((pair.a, pair.b, cfg));
            endpoints.push((pair.b, pair.a, cfg));
        }
        AttackWiring {
            endpoints,
            ..AttackWiring::default()
        }
    }

    /// Add a rushing attacker at `node` whose broadcasts go out at
    /// `scale` of the honest latency.
    pub fn with_rusher(mut self, node: NodeId, scale: f64) -> Self {
        self.rushers.push((node, scale));
        self
    }

    /// Add an early-reply blackhole at `node`.
    pub fn with_fabricator(mut self, node: NodeId) -> Self {
        self.fabricators.push(node);
        self
    }

    /// Quarantine `node` (the response module's isolation; overrides any
    /// other role assignment).
    pub fn with_isolated(mut self, node: NodeId) -> Self {
        self.isolated.push(node);
        self
    }

    /// Activate wormhole pairs of `plan` with *per-pair* configurations:
    /// each `(index, cfg)` entry activates `plan.attacker_pairs[index]`
    /// with its own config. This is how a second, independent wormhole
    /// (possibly with a different mode or tunnel policy) is wired next to
    /// the first.
    pub fn from_plan_configs(
        plan: &manet_sim::NetworkPlan,
        configs: &[(usize, WormholeConfig)],
    ) -> Self {
        let mut endpoints = Vec::new();
        for &(i, cfg) in configs {
            let pair = plan.attacker_pairs[i];
            endpoints.push((pair.a, pair.b, cfg));
            endpoints.push((pair.b, pair.a, cfg));
        }
        AttackWiring {
            endpoints,
            ..AttackWiring::default()
        }
    }

    /// Activate *all* pairs of the plan.
    pub fn all_pairs(plan: &manet_sim::NetworkPlan, cfg: WormholeConfig) -> Self {
        let idx: Vec<usize> = (0..plan.attacker_pairs.len()).collect();
        Self::from_plan(plan, &idx, cfg)
    }

    /// The role of node `id`: `Some((peer, cfg))` if it is an active
    /// wormhole endpoint.
    pub fn role_of(&self, id: NodeId) -> Option<(NodeId, WormholeConfig)> {
        self.endpoints
            .iter()
            .find(|(e, _, _)| *e == id)
            .map(|&(_, p, c)| (p, c))
    }

    /// Build the behaviour for node `id` given a freshly constructed
    /// router. Wormhole roles take precedence, then rushers, then
    /// fabricators.
    pub fn build(&self, router: RouterNode) -> AttackNode {
        let id = router.id();
        if self.isolated.contains(&id) {
            return AttackNode::isolated(router);
        }
        if let Some((peer, cfg)) = self.role_of(id) {
            return AttackNode::wormhole(router, peer, cfg);
        }
        if let Some(&(_, scale)) = self.rushers.iter().find(|(n, _)| *n == id) {
            return AttackNode::rusher(router, scale);
        }
        if self.fabricators.contains(&id) {
            return AttackNode::fabricator(router);
        }
        AttackNode::legit(router)
    }
}

/// Default tunnel latency re-export for convenience in tests.
pub const DEFAULT_TUNNEL_LATENCY: SimDuration = SimDuration(200);

#[cfg(test)]
mod tests {
    use super::*;
    use manet_routing::{ProtocolKind, RouterConfig};
    use manet_sim::prelude::*;

    #[test]
    fn wiring_assigns_roles_symmetrically() {
        let plan = uniform_grid(6, 6, 1);
        let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::default());
        let pair = plan.attacker_pairs[0];
        assert_eq!(wiring.role_of(pair.a).map(|(p, _)| p), Some(pair.b));
        assert_eq!(wiring.role_of(pair.b).map(|(p, _)| p), Some(pair.a));
        assert!(wiring.role_of(plan.src_pool[0]).is_none());
    }

    #[test]
    fn none_wiring_builds_only_legit_nodes() {
        let plan = uniform_grid(6, 6, 1);
        let wiring = AttackWiring::none();
        for id in plan.topology.nodes() {
            let node = wiring.build(RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr)));
            assert!(!node.is_attacker());
            assert!(node.attack_stats().is_none());
        }
    }

    #[test]
    fn participation_endpoint_gets_out_of_band_link() {
        let plan = uniform_grid(6, 6, 1);
        let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::default());
        let pair = plan.attacker_pairs[0];
        let node = wiring.build(RouterNode::new(pair.a, RouterConfig::new(ProtocolKind::Mr)));
        assert!(node.is_attacker());
        assert_eq!(node.router().out_of_band().map(|(p, _)| p), Some(pair.b));
    }

    #[test]
    fn hidden_endpoint_has_no_out_of_band_link() {
        let plan = uniform_grid(6, 6, 1);
        let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::hidden());
        let pair = plan.attacker_pairs[0];
        let node = wiring.build(RouterNode::new(pair.a, RouterConfig::new(ProtocolKind::Mr)));
        assert!(node.is_attacker());
        assert!(node.router().out_of_band().is_none());
    }

    #[test]
    fn per_pair_configs_wire_independent_wormholes() {
        use crate::wormhole::TunnelPolicy;
        let mut plan = uniform_grid(6, 6, 1);
        plan.attacker_pairs.push(AttackerPair {
            a: NodeId(0),
            b: NodeId(35),
        });
        let wiring = AttackWiring::from_plan_configs(
            &plan,
            &[
                (0, WormholeConfig::default()),
                (1, WormholeConfig::selective(0.5)),
            ],
        );
        let p0 = plan.attacker_pairs[0];
        assert_eq!(
            wiring.role_of(p0.a).map(|(_, c)| c.tunneling),
            Some(TunnelPolicy::Always)
        );
        assert_eq!(
            wiring.role_of(NodeId(35)).map(|(_, c)| c.tunneling),
            Some(TunnelPolicy::Selective(0.5))
        );
        let honest = plan
            .topology
            .nodes()
            .find(|&n| !plan.attacker_pairs.iter().any(|p| p.a == n || p.b == n))
            .unwrap();
        assert!(wiring.role_of(honest).is_none());
    }

    #[test]
    fn subset_activation() {
        let mut plan = uniform_grid(6, 6, 1);
        // Fabricate a second pair out of two grid corners for the test.
        plan.attacker_pairs.push(AttackerPair {
            a: NodeId(0),
            b: NodeId(35),
        });
        let wiring = AttackWiring::from_plan(&plan, &[1], WormholeConfig::default());
        assert!(wiring.role_of(plan.attacker_pairs[0].a).is_none());
        assert!(wiring.role_of(NodeId(0)).is_some());
    }
}
