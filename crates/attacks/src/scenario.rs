//! Convenience drivers for attacked (and normal) discoveries.

use crate::node::{AttackNode, AttackWiring};
use crate::wormhole::WormholeConfig;
use manet_routing::{
    DiscoveryOutcome, ProtocolKind, Route, RouterConfig, RouterNode, Session, DEFAULT_MAX_WAIT,
};
use manet_sim::{AttackerPair, LatencyModel, Link, NetworkPlan, NodeId};

/// Build a [`Session`] of [`AttackNode`]s over `plan` with the given
/// wiring. `AttackWiring::none()` yields the normal system on the *same*
/// node set — the paper's baseline.
pub fn attack_session(
    plan: &NetworkPlan,
    router_cfg: RouterConfig,
    wiring: &AttackWiring,
    latency: LatencyModel,
    seed: u64,
) -> Session<AttackNode> {
    Session::new(plan, latency, seed, |id| {
        wiring.build(RouterNode::new(id, router_cfg.clone()))
    })
}

/// One discovery under the given wiring, with default latency/router
/// parameters.
pub fn run_attacked_discovery(
    plan: &NetworkPlan,
    protocol: ProtocolKind,
    wiring: &AttackWiring,
    src: NodeId,
    dst: NodeId,
    seed: u64,
) -> DiscoveryOutcome {
    let mut session = attack_session(
        plan,
        RouterConfig::new(protocol),
        wiring,
        LatencyModel::default(),
        seed,
    );
    session.discover(src, dst, DEFAULT_MAX_WAIT)
}

/// One discovery with every wormhole pair of the plan active.
pub fn run_wormholed_discovery(
    plan: &NetworkPlan,
    protocol: ProtocolKind,
    cfg: WormholeConfig,
    src: NodeId,
    dst: NodeId,
    seed: u64,
) -> DiscoveryOutcome {
    let wiring = AttackWiring::all_pairs(plan, cfg);
    run_attacked_discovery(plan, protocol, &wiring, src, dst, seed)
}

/// The tunneled link of a (participation-mode) pair.
pub fn tunnel_link(pair: AttackerPair) -> Link {
    Link::new(pair.a, pair.b)
}

/// Fraction of `routes` containing the tunneled link of `pair` — the
/// paper's Table I criterion ("a route is considered affected if it
/// contains the tunneled link between the two attackers").
pub fn affected_fraction(routes: &[Route], pair: AttackerPair) -> f64 {
    if routes.is_empty() {
        return 0.0;
    }
    let link = tunnel_link(pair);
    let hit = routes.iter().filter(|r| r.contains_link(link)).count();
    hit as f64 / routes.len() as f64
}

/// Fraction of routes affected by *any* of the given pairs.
pub fn affected_fraction_any(routes: &[Route], pairs: &[AttackerPair]) -> f64 {
    if routes.is_empty() {
        return 0.0;
    }
    let links: Vec<Link> = pairs.iter().map(|&p| tunnel_link(p)).collect();
    let hit = routes
        .iter()
        .filter(|r| links.iter().any(|&l| r.contains_link(l)))
        .count();
    hit as f64 / routes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wormhole::WormholeMode;
    use manet_sim::prelude::*;

    #[test]
    fn wormhole_attracts_routes_on_the_grid() {
        let plan = uniform_grid(6, 6, 1);
        let pair = plan.attacker_pairs[0];
        let src = plan.src_pool[2];
        let dst = plan.dst_pool[2];
        let normal =
            run_attacked_discovery(&plan, ProtocolKind::Mr, &AttackWiring::none(), src, dst, 1);
        let attacked = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::default(),
            src,
            dst,
            1,
        );
        assert_eq!(affected_fraction(&normal.routes, pair), 0.0);
        let frac = affected_fraction(&attacked.routes, pair);
        assert!(frac > 0.0, "no attacked routes at all");
        // Some attacked route must literally contain the attacker link.
        assert!(attacked
            .routes
            .iter()
            .any(|r| r.contains_link(tunnel_link(pair))));
    }

    #[test]
    fn cluster_topology_routes_are_fully_captured() {
        // The paper: "all routes are affected for both MR and DSR in
        // cluster topology!"
        let plan = two_cluster(1);
        let pair = plan.attacker_pairs[0];
        let src = plan.src_pool[5];
        let dst = plan.dst_pool[10];
        let out = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::default(),
            src,
            dst,
            2,
        );
        assert!(!out.routes.is_empty());
        let frac = affected_fraction(&out.routes, pair);
        assert!(
            frac > 0.9,
            "cluster capture should be near-total, got {frac} over {} routes",
            out.routes.len()
        );
    }

    #[test]
    fn hidden_mode_keeps_attackers_off_routes() {
        let plan = two_cluster(1);
        let pair = plan.attacker_pairs[0];
        let src = plan.src_pool[0];
        let dst = plan.dst_pool[0];
        let out = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::hidden(),
            src,
            dst,
            3,
        );
        assert!(!out.routes.is_empty());
        for r in &out.routes {
            assert!(!r.contains(pair.a) && !r.contains(pair.b), "{r}");
        }
        // At least one route crosses the replay gap: consecutive nodes
        // that are not real radio neighbours.
        let fake = out.routes.iter().any(|r| {
            r.nodes()
                .windows(2)
                .any(|w| !plan.topology.are_neighbors(w[0], w[1]))
        });
        assert!(fake, "hidden wormhole left no impossible link");
    }

    #[test]
    fn never_tunneling_attacker_captures_nothing() {
        // Selective(0.0) keeps the endpoints on the network but the
        // tunnel inert, so no route can contain the attacker link.
        let plan = two_cluster(1);
        let pair = plan.attacker_pairs[0];
        let out = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::selective(0.0),
            plan.src_pool[5],
            plan.dst_pool[10],
            2,
        );
        assert_eq!(affected_fraction(&out.routes, pair), 0.0);
    }

    #[test]
    fn always_on_duty_cycle_matches_paper_attacker() {
        // A duty cycle covering the whole window is the paper's attacker.
        let plan = two_cluster(1);
        let pair = plan.attacker_pairs[0];
        let full = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::duty_cycled(1_000, 1_000),
            plan.src_pool[5],
            plan.dst_pool[10],
            2,
        );
        let paper = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::default(),
            plan.src_pool[5],
            plan.dst_pool[10],
            2,
        );
        assert_eq!(full.routes, paper.routes);
        assert!(affected_fraction(&full.routes, pair) > 0.9);
    }

    #[test]
    fn hidden_config_mode_is_hidden() {
        assert_eq!(WormholeConfig::hidden().mode, WormholeMode::Hidden);
    }

    #[test]
    fn affected_fraction_edge_cases() {
        let pair = AttackerPair {
            a: NodeId(1),
            b: NodeId(2),
        };
        assert_eq!(affected_fraction(&[], pair), 0.0);
        let r1 = Route::new(vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]).unwrap();
        let r2 = Route::new(vec![NodeId(0), NodeId(4), NodeId(3)]).unwrap();
        let routes = vec![r1, r2];
        assert!((affected_fraction(&routes, pair) - 0.5).abs() < 1e-12);
        assert!((affected_fraction_any(&routes, &[pair]) - 0.5).abs() < 1e-12);
    }
}
