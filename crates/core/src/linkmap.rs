//! A compact open-addressed map keyed by [`Link`] — the dense counter
//! behind the link-frequency hot path.
//!
//! The paper's detector tallies every link of every captured route, so
//! `Analysis::train`/`check` hammer a `Link → count` map. `std`'s
//! `HashMap` pays SipHash plus pointer-chasing per tally; here a link's
//! two `u32` node ids pack into one `u64` key that is mixed with
//! splitmix64 and probed linearly in a power-of-two table — one
//! multiply-shift per lookup, keys and values in flat arrays. No
//! removal is supported (tabulation only ever inserts), which keeps
//! linear probing trivially correct.

use manet_sim::{Link, NodeId};

/// Sentinel for an empty slot. Unreachable as a packed link: the low
/// endpoint of a normalized link is strictly below the high one, so the
/// packed value can never have all bits set.
const EMPTY: u64 = u64::MAX;

#[inline]
fn pack(link: Link) -> u64 {
    (u64::from(link.lo().0) << 32) | u64::from(link.hi().0)
}

#[inline]
fn unpack(key: u64) -> Link {
    Link::new(NodeId((key >> 32) as u32), NodeId(key as u32))
}

/// Finalizer of splitmix64 — a full-avalanche mix of the packed key.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Insert-only open-addressed map from [`Link`] to `V`.
#[derive(Clone, Debug)]
pub struct LinkMap<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
}

impl<V: Copy + Default> Default for LinkMap<V> {
    fn default() -> Self {
        LinkMap {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
        }
    }
}

impl<V: Copy + Default> LinkMap<V> {
    /// An empty map (no allocation until the first insert).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct links stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index for `key`: its own slot if present, else the empty
    /// slot where it would be inserted. Requires a non-empty table.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = (mix(key) as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// The value stored for `link`, if any.
    #[inline]
    pub fn get(&self, link: Link) -> Option<V> {
        if self.keys.is_empty() {
            return None;
        }
        let key = pack(link);
        let i = self.probe(key);
        (self.keys[i] == key).then(|| self.vals[i])
    }

    /// Mutable access to the value for `link`, inserting `V::default()`
    /// if absent.
    #[inline]
    pub fn entry_or_default(&mut self, link: Link) -> &mut V {
        // Grow at 3/4 load (and on first use).
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let key = pack(link);
        let i = self.probe(key);
        if self.keys[i] == EMPTY {
            self.keys[i] = key;
            self.len += 1;
        }
        &mut self.vals[i]
    }

    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![V::default(); new_cap]);
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                let i = self.probe(k);
                self.keys[i] = k;
                self.vals[i] = v;
                self.len += 1;
            }
        }
    }

    /// All `(link, value)` pairs, unordered.
    pub fn iter(&self) -> impl Iterator<Item = (Link, V)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|&(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (unpack(k), v))
    }

    /// All values, unordered.
    pub fn values(&self) -> impl Iterator<Item = V> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Drop all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.vals.fill(V::default());
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn link(a: u32, b: u32) -> Link {
        Link::new(NodeId(a), NodeId(b))
    }

    #[test]
    fn counts_like_a_hashmap() {
        let mut m: LinkMap<u32> = LinkMap::new();
        let mut reference: HashMap<Link, u32> = HashMap::new();
        // Pseudo-random link stream with plenty of repeats.
        let mut state = 0x9E3779B97F4A7C15u64;
        for _ in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((state >> 33) % 60) as u32;
            let b = ((state >> 13) % 60) as u32;
            if a == b {
                continue;
            }
            let l = link(a, b);
            *m.entry_or_default(l) += 1;
            *reference.entry(l).or_insert(0) += 1;
        }
        assert_eq!(m.len(), reference.len());
        for (&l, &c) in &reference {
            assert_eq!(m.get(l), Some(c), "{l}");
        }
        let mut from_iter: Vec<(Link, u32)> = m.iter().collect();
        from_iter.sort();
        let mut from_ref: Vec<(Link, u32)> = reference.into_iter().collect();
        from_ref.sort();
        assert_eq!(from_iter, from_ref);
    }

    #[test]
    fn missing_links_read_as_absent() {
        let mut m: LinkMap<u32> = LinkMap::new();
        assert_eq!(m.get(link(1, 2)), None);
        assert!(m.is_empty());
        *m.entry_or_default(link(1, 2)) += 1;
        assert_eq!(m.get(link(1, 2)), Some(1));
        assert_eq!(m.get(link(2, 3)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clear_retains_capacity_and_empties() {
        let mut m: LinkMap<u32> = LinkMap::new();
        for i in 1..40 {
            *m.entry_or_default(link(0, i)) += 1;
        }
        assert_eq!(m.len(), 39);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(link(0, 5)), None);
        *m.entry_or_default(link(0, 5)) += 1;
        assert_eq!(m.get(link(0, 5)), Some(1));
    }

    #[test]
    fn survives_growth_across_many_distinct_links() {
        let mut m: LinkMap<u64> = LinkMap::new();
        for a in 0..50u32 {
            for b in (a + 1)..50 {
                *m.entry_or_default(link(a, b)) += u64::from(a) + u64::from(b);
            }
        }
        assert_eq!(m.len(), 50 * 49 / 2);
        assert_eq!(m.get(link(3, 7)), Some(10));
        assert_eq!(m.get(link(48, 49)), Some(97));
    }

    #[test]
    fn extreme_node_ids_are_representable() {
        // lo < hi always holds, so the packed key never collides with
        // the EMPTY sentinel even at the id-space edge.
        let mut m: LinkMap<u32> = LinkMap::new();
        let l = link(u32::MAX - 1, u32::MAX);
        *m.entry_or_default(l) += 7;
        assert_eq!(m.get(l), Some(7));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![(l, 7)]);
    }
}
