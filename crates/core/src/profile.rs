//! Normal-condition profiles and their adaptive update.
//!
//! "The nominal values of these statistical features are relative to
//! topology, transmission range and routing algorithm, the system will
//! initially be trained in normal conditions with specific network
//! topology, transmission range and routing algorithm employed in the
//! system." — a [`NormalProfile`] is exactly that training product: sample
//! statistics of `p_max` and `Δ` plus the PMF of link relative
//! frequencies.
//!
//! The paper's equations (8)–(9) update the profile online with a
//! forgetting factor `β` weighted by the soft decision `λ`
//! (`new = λβ·measurement + (1 − λβ)·old`): measurements believed to be
//! attacks (`λ → 0`) are not learned into the profile. That update is
//! [`forgetting_update`] / [`NormalProfile::adapt`].

use crate::pmf::Pmf;
use crate::stats::LinkStats;
use manet_routing::Route;
use serde::{Deserialize, Serialize};

/// Sample statistics of one scalar feature.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FeatureStat {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (population form).
    pub std: f64,
    /// Largest training sample.
    pub max: f64,
    /// Number of samples.
    pub n: usize,
}

/// Absolute floor applied to `std` when computing z-scores, so a
/// zero-variance training set (e.g. a degenerate topology where every
/// normal discovery is identical) still yields finite scores.
pub const STD_FLOOR: f64 = 1e-3;

/// Relative floor: `std` is never taken below this fraction of the mean.
/// Ten-run training sets (the paper's scale) routinely under-estimate the
/// feature spread; without the floor an honest discovery a few percent
/// above the training mean scores z > 3 and false-alarms.
pub const REL_STD_FLOOR: f64 = 0.25;

impl FeatureStat {
    /// Compute from raw samples; empty input yields the "untrained" stat.
    pub fn from_samples(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return FeatureStat {
                mean: 0.0,
                std: 0.0,
                max: 0.0,
                n: 0,
            };
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        FeatureStat {
            mean,
            std: var.sqrt(),
            max,
            n,
        }
    }

    /// Z-score of a new measurement against this stat, with the std
    /// floored by [`STD_FLOOR`] and [`REL_STD_FLOOR`]`·|mean|`.
    pub fn z(&self, v: f64) -> f64 {
        self.z_with_rel_floor(v, REL_STD_FLOOR)
    }

    /// Z-score with an explicit relative floor. The right floor depends on
    /// the feature's scale: 0.25 suits the `[0, 1]`-valued `p_max`/`Δ`
    /// (whose ten-run training spread is routinely underestimated), while
    /// the route-length feature — with means around 10 hops and genuine
    /// run-to-run variance — wants a tighter 0.1.
    pub fn z_with_rel_floor(&self, v: f64, rel_floor: f64) -> f64 {
        let floor = STD_FLOOR.max(rel_floor * self.mean.abs());
        (v - self.mean) / self.std.max(floor)
    }
}

/// Eq. (8)/(9): `new = λβ·measurement + (1 − λβ)·old`.
///
/// `lambda` is the soft decision (1 = certainly normal, 0 = certainly
/// attacked); `beta ∈ (0, 1)` the forgetting factor. Attack-suspect
/// measurements barely move the profile.
pub fn forgetting_update(old: f64, measurement: f64, lambda: f64, beta: f64) -> f64 {
    let w = (lambda * beta).clamp(0.0, 1.0);
    w * measurement + (1.0 - w) * old
}

/// The trained normal-condition profile for one (topology, range,
/// protocol) deployment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NormalProfile {
    /// Training statistics of `p_max`.
    pub p_max: FeatureStat,
    /// Training statistics of `Δ`.
    pub delta: FeatureStat,
    /// Training statistics of the mean route length (the extension
    /// feature; see [`LinkStats::mean_hops`]).
    pub hops: FeatureStat,
    /// Trained PMF of link relative frequencies.
    pub pmf: Pmf,
}

impl NormalProfile {
    /// Train from normal-condition route sets (one set per discovery).
    pub fn train(route_sets: &[Vec<Route>], pmf_bins: usize) -> Self {
        let mut pmaxes = Vec::with_capacity(route_sets.len());
        let mut deltas = Vec::with_capacity(route_sets.len());
        let mut hops = Vec::with_capacity(route_sets.len());
        let mut pmf = Pmf::new(pmf_bins);
        for set in route_sets {
            let stats = LinkStats::from_routes(set);
            pmaxes.push(stats.p_max());
            deltas.push(stats.delta());
            hops.push(stats.mean_hops());
            for f in stats.relative_frequencies() {
                pmf.add_sample(f);
            }
        }
        NormalProfile {
            p_max: FeatureStat::from_samples(&pmaxes),
            delta: FeatureStat::from_samples(&deltas),
            hops: FeatureStat::from_samples(&hops),
            pmf,
        }
    }

    /// Whether any training data has been absorbed.
    pub fn is_trained(&self) -> bool {
        self.p_max.n > 0
    }

    /// Online profile adaptation per eq. (8)–(9): fold a new measurement's
    /// features into the profile means, weighted by the soft decision
    /// `lambda` and forgetting factor `beta`. The standard deviations are
    /// adapted with the same weight towards the new absolute deviation, so
    /// the profile tracks slow drift while ignoring suspected attacks.
    pub fn adapt(&mut self, measured_p_max: f64, measured_delta: f64, lambda: f64, beta: f64) {
        Self::adapt_stat(&mut self.p_max, measured_p_max, lambda, beta);
        Self::adapt_stat(&mut self.delta, measured_delta, lambda, beta);
    }

    /// Adapt the mean-route-length stat (extension feature) the same way.
    pub fn adapt_hops(&mut self, measured_mean_hops: f64, lambda: f64, beta: f64) {
        Self::adapt_stat(&mut self.hops, measured_mean_hops, lambda, beta);
    }

    fn adapt_stat(stat: &mut FeatureStat, measured: f64, lambda: f64, beta: f64) {
        let dev = (measured - stat.mean).abs();
        stat.mean = forgetting_update(stat.mean, measured, lambda, beta);
        stat.std = forgetting_update(stat.std, dev, lambda, beta);
        if lambda > 0.5 {
            stat.max = stat.max.max(measured);
        }
        stat.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::NodeId;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    #[test]
    fn feature_stat_basics() {
        let s = FeatureStat::from_samples(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert!((s.std - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn z_score_with_absolute_floor() {
        // Zero variance around zero: only the absolute floor applies.
        let s = FeatureStat::from_samples(&[0.0, 0.0, 0.0]);
        let z = s.z(0.05);
        assert!(z.is_finite());
        assert!(z > 10.0);
        assert_eq!(s.z(0.0), 0.0);
    }

    #[test]
    fn z_score_with_relative_floor() {
        // Zero variance around 0.5: the relative floor (0.25·mean = 0.125)
        // keeps small excursions unremarkable.
        let s = FeatureStat::from_samples(&[0.5, 0.5, 0.5]);
        let z = s.z(0.6);
        assert!((z - 0.8).abs() < 1e-9, "z = {z}");
        // A doubling is still clearly anomalous.
        assert!(s.z(1.0) >= 4.0);
    }

    #[test]
    fn untrained_stat() {
        let s = FeatureStat::from_samples(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn forgetting_update_extremes() {
        // λ = 0 (attack): profile frozen.
        assert_eq!(forgetting_update(0.3, 0.9, 0.0, 0.5), 0.3);
        // λ = 1: plain EWMA at rate β.
        let v = forgetting_update(0.3, 0.9, 1.0, 0.5);
        assert!((v - 0.6).abs() < 1e-12);
        // β = 0: never updates.
        assert_eq!(forgetting_update(0.3, 0.9, 1.0, 0.0), 0.3);
    }

    #[test]
    fn train_builds_feature_and_pmf_profiles() {
        let sets = vec![
            vec![r(&[0, 1, 2, 5]), r(&[0, 3, 4, 5])],
            vec![r(&[0, 1, 2, 5]), r(&[0, 1, 4, 5])],
        ];
        let p = NormalProfile::train(&sets, 20);
        assert!(p.is_trained());
        assert_eq!(p.p_max.n, 2);
        assert!(p.p_max.mean > 0.0 && p.p_max.mean < 1.0);
        assert!(p.pmf.sample_count() > 0);
    }

    #[test]
    fn untrained_profile_reports_untrained() {
        let p = NormalProfile::train(&[], 10);
        assert!(!p.is_trained());
    }

    #[test]
    fn adapt_moves_towards_normal_measurements_only() {
        let sets = vec![vec![r(&[0, 1, 2, 5]), r(&[0, 3, 4, 5])]];
        let mut p = NormalProfile::train(&sets, 10);
        let before = p.p_max.mean;
        // Attack measurement (λ ≈ 0): frozen.
        p.adapt(0.9, 0.9, 0.0, 0.2);
        assert_eq!(p.p_max.mean, before);
        // Normal measurement (λ = 1): moves towards it.
        p.adapt(before + 0.1, 0.0, 1.0, 0.2);
        assert!(p.p_max.mean > before);
        assert!(p.p_max.mean < before + 0.1);
    }
}
