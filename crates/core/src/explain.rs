//! The verdict explainer: *why* a detector flagged a route set.
//!
//! A verdict is a couple of statistics and a soft decision λ — enough to
//! act on, useless to debug with. An [`Explanation`] opens the box: it
//! names the most-frequent link, lists every route crossing it, and
//! quantifies each route's **leave-one-out contribution** to the
//! statistics (how much `p_max`/`Δ` drop when the route is removed from
//! the set — the principled answer to "which routes made the detector
//! fire"). When a causal flight recording of the discovery exists, the
//! per-hop provenance slots ([`HopProvenance`]) are filled with the
//! trace's event/cause ids and tunnel markings, tying the statistical
//! verdict all the way down to individual wormhole tunnel traversals.
//!
//! The explanation is detector-agnostic: `detector` names which detector
//! produced the verdict and `evidence` carries that detector's
//! [`DetectorEvidence`] variant. The flat SAM statistics stay as
//! top-level fields (they describe the route set whichever detector
//! judged it), and both new fields decode leniently so explanation lines
//! written before the detector redesign still parse.

use crate::detect::{DetectorEvidence, DetectorVerdict};
use crate::detector::SamAnalysis;
use crate::stats::LinkStats;
use manet_routing::Route;
use serde::{Deserialize, Serialize};

/// One hop of a suspicious route, with optional causal-trace backing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopProvenance {
    /// Sending node id.
    pub from: u32,
    /// Receiving node id.
    pub to: u32,
    /// Whether the hop rode a wormhole tunnel (known only when a flight
    /// recording was consulted).
    pub tunneled: bool,
    /// The trace entry id evidencing this hop, when reconstructed.
    pub event: Option<u64>,
    /// That entry's causal parent id.
    pub cause: Option<u64>,
}

impl HopProvenance {
    /// A provenance-less hop (no flight recording available).
    pub fn plain(from: u32, to: u32) -> Self {
        HopProvenance {
            from,
            to,
            tunneled: false,
            event: None,
            cause: None,
        }
    }
}

/// Why one route matters to the verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteExplanation {
    /// The route's node ids, source first.
    pub nodes: Vec<u32>,
    /// Hop-by-hop provenance.
    pub hops: Vec<HopProvenance>,
    /// Tunnel crossings on the route's causal lineage.
    pub tunnel_hops: u64,
    /// Causal depth of the route's final delivery (0 = unreconstructed).
    pub lineage_depth: u64,
    /// `p_max(R) − p_max(R \ {route})`: how much this route alone
    /// inflates the top-link frequency.
    pub p_max_contribution: f64,
    /// `Δ(R) − Δ(R \ {route})`: ditto for the frequency gap.
    pub delta_contribution: f64,
}

/// The full explanation of one detection, serialized into flight
/// recordings, telemetry JSONL, and `results/*.json` reports (its
/// `kind` field discriminates the line).
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Explanation {
    /// Line discriminator, always `"explanation"`.
    pub kind: String,
    /// Name of the detector that produced the verdict (`"sam"`,
    /// `"zscore"`, `"geometric"`, `"ensemble"`).
    pub detector: String,
    /// The detector's normalized anomaly score (1.0 = decision
    /// boundary); 0 on explanations predating the detector redesign.
    pub score: f64,
    /// Detector-specific evidence, when the producing path supplied it.
    pub evidence: Option<DetectorEvidence>,
    /// The most-frequent (suspect) link, as `(lo, hi)` node ids.
    pub suspect_link: Option<(u32, u32)>,
    /// Occurrences of the suspect link (`n_max`).
    pub suspect_count: u64,
    /// Total link occurrences in the set (`N`).
    pub total_links: u64,
    /// The observed `p_max` (eq. 3).
    pub p_max: f64,
    /// The observed `Δ` (eq. 7).
    pub delta: f64,
    /// Z-score of `p_max` against the trained profile.
    pub z_p_max: f64,
    /// Z-score of `Δ`.
    pub z_delta: f64,
    /// The soft decision λ.
    pub lambda: f64,
    /// Step-1 verdict.
    pub anomalous: bool,
    /// Total tunnel traversals across the explained routes' lineages.
    pub tunnel_traversals: u64,
    /// The routes crossing the suspect link, each with its contribution.
    pub routes: Vec<RouteExplanation>,
}

// Hand-written so explanation lines recorded before the detector
// redesign (no `detector`/`score`/`evidence` fields) keep decoding:
// those three default, everything else stays required.
impl Deserialize for Explanation {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let required = |name: &str| {
            v.field(name)
                .ok_or_else(|| serde::DeError::msg(format!("missing field `{name}`")))
        };
        Ok(Explanation {
            kind: Deserialize::from_value(required("kind")?)?,
            detector: match v.field("detector") {
                None => "sam".to_string(),
                Some(d) => Deserialize::from_value(d)?,
            },
            score: match v.field("score") {
                None => 0.0,
                Some(s) => Deserialize::from_value(s)?,
            },
            evidence: match v.field("evidence") {
                None => None,
                Some(e) => Deserialize::from_value(e)?,
            },
            suspect_link: match v.field("suspect_link") {
                None => None,
                Some(l) => Deserialize::from_value(l)?,
            },
            suspect_count: Deserialize::from_value(required("suspect_count")?)?,
            total_links: Deserialize::from_value(required("total_links")?)?,
            p_max: Deserialize::from_value(required("p_max")?)?,
            delta: Deserialize::from_value(required("delta")?)?,
            z_p_max: Deserialize::from_value(required("z_p_max")?)?,
            z_delta: Deserialize::from_value(required("z_delta")?)?,
            lambda: Deserialize::from_value(required("lambda")?)?,
            anomalous: Deserialize::from_value(required("anomalous")?)?,
            tunnel_traversals: Deserialize::from_value(required("tunnel_traversals")?)?,
            routes: Deserialize::from_value(required("routes")?)?,
        })
    }
}

/// Leave-one-out statistics: `(p_max, Δ)` of `routes` with index `skip`
/// removed.
fn loo_stats(routes: &[Route], skip: usize) -> (f64, f64) {
    let rest: Vec<Route> = routes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .map(|(_, r)| r.clone())
        .collect();
    let stats = LinkStats::from_routes(&rest);
    (stats.p_max(), stats.delta())
}

/// Shared construction: list the suspect-crossing routes with their
/// leave-one-out contributions. `p_max`/`delta` are the observed set
/// statistics whichever detector produced the verdict.
#[allow(clippy::too_many_arguments)]
fn build_explanation(
    routes: &[Route],
    suspect: Option<manet_sim::Link>,
    detector: String,
    score: f64,
    evidence: Option<DetectorEvidence>,
    p_max: f64,
    delta: f64,
    z_p_max: f64,
    z_delta: f64,
    lambda: f64,
    anomalous: bool,
) -> Explanation {
    let stats = LinkStats::from_routes(routes);
    let mut explained = Vec::new();
    for (i, route) in routes.iter().enumerate() {
        let crosses = suspect.map(|l| route.contains_link(l)).unwrap_or(false);
        if !crosses {
            continue;
        }
        let (loo_p_max, loo_delta) = loo_stats(routes, i);
        explained.push(RouteExplanation {
            nodes: route.nodes().iter().map(|n| n.0).collect(),
            hops: route
                .nodes()
                .windows(2)
                .map(|w| HopProvenance::plain(w[0].0, w[1].0))
                .collect(),
            tunnel_hops: 0,
            lineage_depth: 0,
            p_max_contribution: p_max - loo_p_max,
            delta_contribution: delta - loo_delta,
        });
    }
    Explanation {
        kind: "explanation".to_string(),
        detector,
        score,
        evidence,
        suspect_link: suspect.map(|l| (l.lo().0, l.hi().0)),
        suspect_count: suspect.map(|l| u64::from(stats.count(l))).unwrap_or(0),
        total_links: stats.total_links(),
        p_max,
        delta,
        z_p_max,
        z_delta,
        lambda,
        anomalous,
        tunnel_traversals: 0,
        routes: explained,
    }
}

impl Explanation {
    /// Build the explanation of a SAM `analysis` over the route set it
    /// was computed from. Hop provenance starts plain; callers holding a
    /// flight recording fill it in with [`Explanation::set_provenance`].
    /// The normalized `score` is unknown at this layer (it needs the
    /// detector's threshold) and stays 0; paths that hold a
    /// [`DetectorVerdict`] should prefer [`Explanation::from_verdict`].
    pub fn from_analysis(routes: &[Route], analysis: &SamAnalysis) -> Self {
        build_explanation(
            routes,
            analysis.suspect_link,
            "sam".to_string(),
            0.0,
            Some(DetectorEvidence::Sam {
                z_p_max: analysis.z_p_max,
                z_delta: analysis.z_delta,
                z_hops_short: analysis.z_hops_short,
                pmf_anomalous: analysis.pmf_verdict.map(|v| v.anomalous),
                untrained: analysis.untrained,
            }),
            analysis.features.p_max,
            analysis.features.delta,
            analysis.z_p_max,
            analysis.z_delta,
            analysis.lambda,
            analysis.anomalous,
        )
    }

    /// Build the explanation of any detector's verdict over the route
    /// set it judged. The top-level z-scores are filled from SAM
    /// evidence when the verdict carries it (they are SAM statistics;
    /// other detectors leave them 0).
    pub fn from_verdict(routes: &[Route], verdict: &DetectorVerdict) -> Self {
        let (z_p_max, z_delta) = match &verdict.evidence {
            DetectorEvidence::Sam {
                z_p_max, z_delta, ..
            } => (*z_p_max, *z_delta),
            _ => (0.0, 0.0),
        };
        build_explanation(
            routes,
            verdict.suspect_link,
            verdict.detector.clone(),
            verdict.score,
            Some(verdict.evidence.clone()),
            verdict.p_max,
            verdict.delta,
            z_p_max,
            z_delta,
            verdict.lambda,
            verdict.anomalous,
        )
    }

    /// Fill route `idx`'s hop provenance from a reconstructed lineage and
    /// refresh the tunnel totals. `hops` must cover the route's hops in
    /// order.
    pub fn set_provenance(&mut self, idx: usize, hops: Vec<HopProvenance>, lineage_depth: u64) {
        let route = &mut self.routes[idx];
        route.tunnel_hops = hops.iter().filter(|h| h.tunneled).count() as u64;
        route.hops = hops;
        route.lineage_depth = lineage_depth;
        self.tunnel_traversals = self.routes.iter().map(|r| r.tunnel_hops).sum();
    }

    /// The explanation as a JSON value tree (for embedding in flight
    /// recordings and reports).
    pub fn to_value(&self) -> serde::Value {
        Serialize::to_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::SamDetector;
    use crate::profile::NormalProfile;
    use manet_sim::NodeId;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    fn normal_sets() -> Vec<Vec<Route>> {
        vec![
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 4, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
            ],
            vec![
                r(&[0, 1, 4, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 13, 9]),
            ],
        ]
    }

    fn attacked_set() -> Vec<Route> {
        vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 2, 9]),
            r(&[0, 3, 7, 8, 4, 9]),
            r(&[0, 5, 6, 9]), // one honest straggler
        ]
    }

    fn explain() -> (Vec<Route>, Explanation) {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = attacked_set();
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        (routes, ex)
    }

    #[test]
    fn explanation_names_the_suspect_and_its_routes() {
        let (_, ex) = explain();
        assert_eq!(ex.suspect_link, Some((7, 8)));
        assert_eq!(ex.suspect_count, 3);
        assert_eq!(ex.routes.len(), 3, "only suspect-crossing routes listed");
        assert!(ex.p_max > 0.0 && ex.delta > 0.0);
        for route in &ex.routes {
            assert!(route.nodes.windows(2).any(|w| w == [7, 8]));
            assert_eq!(route.hops.len(), route.nodes.len() - 1);
            assert!(
                route.p_max_contribution > 0.0,
                "removing a suspect route must lower p_max: {route:?}"
            );
        }
    }

    #[test]
    fn provenance_fills_in_and_totals_tunnels() {
        let (_, mut ex) = explain();
        let hops: Vec<HopProvenance> = ex.routes[0]
            .nodes
            .windows(2)
            .enumerate()
            .map(|(i, w)| HopProvenance {
                from: w[0],
                to: w[1],
                tunneled: w == [7, 8],
                event: Some(i as u64 + 10),
                cause: (i > 0).then(|| i as u64 + 9),
            })
            .collect();
        ex.set_provenance(0, hops, 4);
        assert_eq!(ex.routes[0].tunnel_hops, 1);
        assert_eq!(ex.routes[0].lineage_depth, 4);
        assert_eq!(ex.tunnel_traversals, 1);
    }

    #[test]
    fn zero_routes_explains_without_panicking() {
        // A discovery that found nothing still gets a (vacuous) verdict.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes: Vec<Route> = Vec::new();
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        assert_eq!(ex.suspect_link, None);
        assert_eq!(ex.suspect_count, 0);
        assert_eq!(ex.total_links, 0);
        assert_eq!(ex.p_max, 0.0);
        assert_eq!(ex.delta, 0.0);
        assert!(!ex.anomalous);
        assert!(ex.routes.is_empty());
    }

    #[test]
    fn tied_top_links_break_deterministically_with_zero_delta() {
        // Two equally frequent links — e.g. a second wormhole pair as
        // strong as the first. Δ must be exactly 0 and the suspect must
        // be the normalized-order smaller link, every time.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 2, 9]),
            r(&[0, 11, 12, 9]),
            r(&[0, 3, 11, 12, 4, 9]),
        ];
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        assert_eq!(ex.delta, 0.0, "a perfect tie has no frequency gap");
        assert_eq!(ex.suspect_link, Some((7, 8)), "tie broken by link order");
        assert_eq!(ex.suspect_count, 2);
        // Re-running is byte-stable: same suspect, same listed routes.
        let again = Explanation::from_analysis(&routes, &d.analyze(&routes, &profile));
        assert_eq!(again, ex);
    }

    #[test]
    fn single_route_set_yields_empty_leave_one_out_rest() {
        // One route only: the leave-one-out complement is the empty set,
        // which must not panic and must attribute everything to that
        // route.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = vec![r(&[0, 7, 8, 9])];
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        assert_eq!(ex.routes.len(), 1);
        let only = &ex.routes[0];
        assert_eq!(only.p_max_contribution, ex.p_max);
        assert_eq!(only.delta_contribution, ex.delta);
        assert_eq!(only.hops.len(), 3);
    }

    #[test]
    fn explanation_round_trips_through_json() {
        let (_, ex) = explain();
        let line = serde_json::to_string(&ex).unwrap();
        let back: Explanation = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ex);
        let v = ex.to_value();
        assert_eq!(
            v.field("kind").and_then(serde::Value::as_str),
            Some("explanation")
        );
        assert_eq!(
            v.field("detector").and_then(serde::Value::as_str),
            Some("sam")
        );
    }

    #[test]
    fn pre_redesign_explanation_lines_still_decode() {
        // An explanation serialized before the detector redesign carries
        // none of `detector`/`score`/`evidence` — it must decode with
        // the documented defaults, not error.
        let old = concat!(
            r#"{"kind":"explanation","suspect_link":[7,8],"suspect_count":3,"#,
            r#""total_links":14,"p_max":0.214,"delta":0.5,"z_p_max":9.1,"#,
            r#""z_delta":8.2,"lambda":0.001,"anomalous":true,"#,
            r#""tunnel_traversals":0,"routes":[]}"#
        );
        let ex: Explanation = serde_json::from_str(old).unwrap();
        assert_eq!(ex.detector, "sam");
        assert_eq!(ex.score, 0.0);
        assert_eq!(ex.evidence, None);
        assert_eq!(ex.suspect_link, Some((7, 8)));
        assert!(ex.anomalous);
    }

    #[test]
    fn from_verdict_carries_the_detector_name_score_and_evidence() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let routes = attacked_set();
        let d = SamDetector::default();
        let verdict = crate::detect::verdict_from_sam(d.config(), &d.analyze(&routes, &profile));
        let ex = Explanation::from_verdict(&routes, &verdict);
        assert_eq!(ex.detector, "sam");
        assert_eq!(ex.score, verdict.score);
        assert!(ex.score > 1.0, "attacked set must sit past the boundary");
        assert_eq!(ex.evidence.as_ref(), Some(&verdict.evidence));
        // The listed routes match the analysis-built explanation exactly.
        let from_analysis = Explanation::from_analysis(&routes, &d.analyze(&routes, &profile));
        assert_eq!(ex.routes, from_analysis.routes);
        assert_eq!(ex.suspect_link, from_analysis.suspect_link);
        assert_eq!(ex.z_p_max, from_analysis.z_p_max);
        assert_eq!(ex.z_delta, from_analysis.z_delta);
    }

    #[test]
    fn from_verdict_on_a_non_sam_detector_leaves_sam_z_scores_zero() {
        use crate::detect::{Detector, DetectorInput, ZScoreNeighborDetector};
        let profile = NormalProfile::train(&normal_sets(), 20);
        let routes = attacked_set();
        let verdict =
            ZScoreNeighborDetector::default().detect(&DetectorInput::new(&routes, &profile));
        let ex = Explanation::from_verdict(&routes, &verdict);
        assert_eq!(ex.detector, "zscore");
        assert_eq!(ex.z_p_max, 0.0);
        assert_eq!(ex.z_delta, 0.0);
        assert!(matches!(
            ex.evidence,
            Some(DetectorEvidence::NeighborZ { .. })
        ));
        // The suspect-crossing route listing works off the verdict's link.
        assert_eq!(ex.suspect_link, Some((7, 8)));
        assert_eq!(ex.routes.len(), 3);
    }
}
