//! The verdict explainer: *why* SAM flagged a route set.
//!
//! A SAM verdict is two statistics (`p_max`, `Δ`) and a soft decision λ
//! — enough to act on, useless to debug with. An [`Explanation`] opens
//! the box: it names the most-frequent link, lists every route crossing
//! it, and quantifies each route's **leave-one-out contribution** to the
//! statistics (how much `p_max`/`Δ` drop when the route is removed from
//! the set — the principled answer to "which routes made the detector
//! fire"). When a causal flight recording of the discovery exists, the
//! per-hop provenance slots ([`HopProvenance`]) are filled with the
//! trace's event/cause ids and tunnel markings, tying the statistical
//! verdict all the way down to individual wormhole tunnel traversals.

use crate::detector::SamAnalysis;
use crate::stats::LinkStats;
use manet_routing::Route;
use serde::{Deserialize, Serialize};

/// One hop of a suspicious route, with optional causal-trace backing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopProvenance {
    /// Sending node id.
    pub from: u32,
    /// Receiving node id.
    pub to: u32,
    /// Whether the hop rode a wormhole tunnel (known only when a flight
    /// recording was consulted).
    pub tunneled: bool,
    /// The trace entry id evidencing this hop, when reconstructed.
    pub event: Option<u64>,
    /// That entry's causal parent id.
    pub cause: Option<u64>,
}

impl HopProvenance {
    /// A provenance-less hop (no flight recording available).
    pub fn plain(from: u32, to: u32) -> Self {
        HopProvenance {
            from,
            to,
            tunneled: false,
            event: None,
            cause: None,
        }
    }
}

/// Why one route matters to the verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteExplanation {
    /// The route's node ids, source first.
    pub nodes: Vec<u32>,
    /// Hop-by-hop provenance.
    pub hops: Vec<HopProvenance>,
    /// Tunnel crossings on the route's causal lineage.
    pub tunnel_hops: u64,
    /// Causal depth of the route's final delivery (0 = unreconstructed).
    pub lineage_depth: u64,
    /// `p_max(R) − p_max(R \ {route})`: how much this route alone
    /// inflates the top-link frequency.
    pub p_max_contribution: f64,
    /// `Δ(R) − Δ(R \ {route})`: ditto for the frequency gap.
    pub delta_contribution: f64,
}

/// The full explanation of one detection, serialized into flight
/// recordings, telemetry JSONL, and `results/*.json` reports (its
/// `kind` field discriminates the line).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Line discriminator, always `"explanation"`.
    pub kind: String,
    /// The most-frequent (suspect) link, as `(lo, hi)` node ids.
    pub suspect_link: Option<(u32, u32)>,
    /// Occurrences of the suspect link (`n_max`).
    pub suspect_count: u64,
    /// Total link occurrences in the set (`N`).
    pub total_links: u64,
    /// The observed `p_max` (eq. 3).
    pub p_max: f64,
    /// The observed `Δ` (eq. 7).
    pub delta: f64,
    /// Z-score of `p_max` against the trained profile.
    pub z_p_max: f64,
    /// Z-score of `Δ`.
    pub z_delta: f64,
    /// The soft decision λ.
    pub lambda: f64,
    /// Step-1 verdict.
    pub anomalous: bool,
    /// Total tunnel traversals across the explained routes' lineages.
    pub tunnel_traversals: u64,
    /// The routes crossing the suspect link, each with its contribution.
    pub routes: Vec<RouteExplanation>,
}

/// Leave-one-out statistics: `(p_max, Δ)` of `routes` with index `skip`
/// removed.
fn loo_stats(routes: &[Route], skip: usize) -> (f64, f64) {
    let rest: Vec<Route> = routes
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != skip)
        .map(|(_, r)| r.clone())
        .collect();
    let stats = LinkStats::from_routes(&rest);
    (stats.p_max(), stats.delta())
}

impl Explanation {
    /// Build the explanation of `analysis` over the route set it was
    /// computed from. Hop provenance starts plain; callers holding a
    /// flight recording fill it in with [`Explanation::set_provenance`].
    pub fn from_analysis(routes: &[Route], analysis: &SamAnalysis) -> Self {
        let f = &analysis.features;
        let suspect = analysis.suspect_link;
        let stats = LinkStats::from_routes(routes);
        let mut explained = Vec::new();
        for (i, route) in routes.iter().enumerate() {
            let crosses = suspect.map(|l| route.contains_link(l)).unwrap_or(false);
            if !crosses {
                continue;
            }
            let (loo_p_max, loo_delta) = loo_stats(routes, i);
            explained.push(RouteExplanation {
                nodes: route.nodes().iter().map(|n| n.0).collect(),
                hops: route
                    .nodes()
                    .windows(2)
                    .map(|w| HopProvenance::plain(w[0].0, w[1].0))
                    .collect(),
                tunnel_hops: 0,
                lineage_depth: 0,
                p_max_contribution: f.p_max - loo_p_max,
                delta_contribution: f.delta - loo_delta,
            });
        }
        Explanation {
            kind: "explanation".to_string(),
            suspect_link: suspect.map(|l| (l.lo().0, l.hi().0)),
            suspect_count: suspect.map(|l| u64::from(stats.count(l))).unwrap_or(0),
            total_links: stats.total_links(),
            p_max: f.p_max,
            delta: f.delta,
            z_p_max: analysis.z_p_max,
            z_delta: analysis.z_delta,
            lambda: analysis.lambda,
            anomalous: analysis.anomalous,
            tunnel_traversals: 0,
            routes: explained,
        }
    }

    /// Fill route `idx`'s hop provenance from a reconstructed lineage and
    /// refresh the tunnel totals. `hops` must cover the route's hops in
    /// order.
    pub fn set_provenance(&mut self, idx: usize, hops: Vec<HopProvenance>, lineage_depth: u64) {
        let route = &mut self.routes[idx];
        route.tunnel_hops = hops.iter().filter(|h| h.tunneled).count() as u64;
        route.hops = hops;
        route.lineage_depth = lineage_depth;
        self.tunnel_traversals = self.routes.iter().map(|r| r.tunnel_hops).sum();
    }

    /// The explanation as a JSON value tree (for embedding in flight
    /// recordings and reports).
    pub fn to_value(&self) -> serde::Value {
        Serialize::to_value(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::SamDetector;
    use crate::profile::NormalProfile;
    use manet_sim::NodeId;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    fn normal_sets() -> Vec<Vec<Route>> {
        vec![
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 4, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
            ],
            vec![
                r(&[0, 1, 4, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 13, 9]),
            ],
        ]
    }

    fn attacked_set() -> Vec<Route> {
        vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 2, 9]),
            r(&[0, 3, 7, 8, 4, 9]),
            r(&[0, 5, 6, 9]), // one honest straggler
        ]
    }

    fn explain() -> (Vec<Route>, Explanation) {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = attacked_set();
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        (routes, ex)
    }

    #[test]
    fn explanation_names_the_suspect_and_its_routes() {
        let (_, ex) = explain();
        assert_eq!(ex.suspect_link, Some((7, 8)));
        assert_eq!(ex.suspect_count, 3);
        assert_eq!(ex.routes.len(), 3, "only suspect-crossing routes listed");
        assert!(ex.p_max > 0.0 && ex.delta > 0.0);
        for route in &ex.routes {
            assert!(route.nodes.windows(2).any(|w| w == [7, 8]));
            assert_eq!(route.hops.len(), route.nodes.len() - 1);
            assert!(
                route.p_max_contribution > 0.0,
                "removing a suspect route must lower p_max: {route:?}"
            );
        }
    }

    #[test]
    fn provenance_fills_in_and_totals_tunnels() {
        let (_, mut ex) = explain();
        let hops: Vec<HopProvenance> = ex.routes[0]
            .nodes
            .windows(2)
            .enumerate()
            .map(|(i, w)| HopProvenance {
                from: w[0],
                to: w[1],
                tunneled: w == [7, 8],
                event: Some(i as u64 + 10),
                cause: (i > 0).then(|| i as u64 + 9),
            })
            .collect();
        ex.set_provenance(0, hops, 4);
        assert_eq!(ex.routes[0].tunnel_hops, 1);
        assert_eq!(ex.routes[0].lineage_depth, 4);
        assert_eq!(ex.tunnel_traversals, 1);
    }

    #[test]
    fn zero_routes_explains_without_panicking() {
        // A discovery that found nothing still gets a (vacuous) verdict.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes: Vec<Route> = Vec::new();
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        assert_eq!(ex.suspect_link, None);
        assert_eq!(ex.suspect_count, 0);
        assert_eq!(ex.total_links, 0);
        assert_eq!(ex.p_max, 0.0);
        assert_eq!(ex.delta, 0.0);
        assert!(!ex.anomalous);
        assert!(ex.routes.is_empty());
    }

    #[test]
    fn tied_top_links_break_deterministically_with_zero_delta() {
        // Two equally frequent links — e.g. a second wormhole pair as
        // strong as the first. Δ must be exactly 0 and the suspect must
        // be the normalized-order smaller link, every time.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 2, 9]),
            r(&[0, 11, 12, 9]),
            r(&[0, 3, 11, 12, 4, 9]),
        ];
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        assert_eq!(ex.delta, 0.0, "a perfect tie has no frequency gap");
        assert_eq!(ex.suspect_link, Some((7, 8)), "tie broken by link order");
        assert_eq!(ex.suspect_count, 2);
        // Re-running is byte-stable: same suspect, same listed routes.
        let again = Explanation::from_analysis(&routes, &d.analyze(&routes, &profile));
        assert_eq!(again, ex);
    }

    #[test]
    fn single_route_set_yields_empty_leave_one_out_rest() {
        // One route only: the leave-one-out complement is the empty set,
        // which must not panic and must attribute everything to that
        // route.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = vec![r(&[0, 7, 8, 9])];
        let analysis = d.analyze(&routes, &profile);
        let ex = Explanation::from_analysis(&routes, &analysis);
        assert_eq!(ex.routes.len(), 1);
        let only = &ex.routes[0];
        assert_eq!(only.p_max_contribution, ex.p_max);
        assert_eq!(only.delta_contribution, ex.delta);
        assert_eq!(only.hops.len(), 3);
    }

    #[test]
    fn explanation_round_trips_through_json() {
        let (_, ex) = explain();
        let line = serde_json::to_string(&ex).unwrap();
        let back: Explanation = serde_json::from_str(&line).unwrap();
        assert_eq!(back, ex);
        let v = ex.to_value();
        assert_eq!(
            v.field("kind").and_then(serde::Value::as_str),
            Some("explanation")
        );
    }
}
