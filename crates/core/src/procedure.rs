//! The three-step wormhole detection procedure (paper Fig. 3).
//!
//! 1. **Statistical analysis** of the routes from one discovery. No
//!    anomaly → choose several (maximally disjoint) paths to feed back to
//!    the source.
//! 2. **Probe test** of the suspicious paths: send test data packets and
//!    wait for ACKs. This also catches the DoS attacker that "refuses to
//!    forward data packets but behaves normally during routing".
//! 3. **Confirm & report**: identify the malicious nodes as the endpoints
//!    of the most frequent link, and emit the report that feeds the IDS
//!    response module (alert the security authority, notify the source and
//!    the attackers' neighbours to isolate them).
//!
//! The probe transport is abstracted as [`ProbeTransport`] so the
//! procedure is testable without a simulator and pluggable over the real
//! discovery [`Session`](manet_routing::Session) (see `manet-attacks` and
//! the `sam-experiments` crate for the wiring).

use crate::detector::{SamAnalysis, SamDetector};
use crate::profile::NormalProfile;
use manet_routing::{select_disjoint, ProbeOutcome, Route};
use manet_sim::{Link, NodeId};
use serde::{Deserialize, Serialize};

/// Ability to send probe packets along a route and observe the ACKs.
pub trait ProbeTransport {
    /// Send `count` probes along `route`; return the outcome.
    fn probe(&mut self, route: &Route, count: u32) -> ProbeOutcome;
}

/// Blanket impl so closures can serve as transports in tests.
impl<F> ProbeTransport for F
where
    F: FnMut(&Route, u32) -> ProbeOutcome,
{
    fn probe(&mut self, route: &Route, count: u32) -> ProbeOutcome {
        self(route, count)
    }
}

/// Procedure configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ProcedureConfig {
    /// Probes per suspicious path in step 2.
    pub probes_per_path: u32,
    /// Maximum number of suspicious paths to test.
    pub max_paths_tested: usize,
    /// ACK ratio below which a tested path counts as failed.
    pub ack_threshold: f64,
    /// λ below which the statistical evidence alone confirms the attack
    /// (a pure-relay wormhole passes the probe test — the paper's
    /// statistics, not the probes, are what expose it).
    pub lambda_confirm: f64,
    /// Number of routes fed back to the source when everything is normal
    /// ("exactly how many routes will be chosen is a design parameter").
    pub routes_to_source: usize,
}

impl Default for ProcedureConfig {
    fn default() -> Self {
        ProcedureConfig {
            probes_per_path: 5,
            max_paths_tested: 3,
            ack_threshold: 0.6,
            lambda_confirm: 0.15,
            routes_to_source: 3,
        }
    }
}

/// Attack report emitted on confirmation (step 3) — the payload of the
/// "report to security authority and/or notify the source and the
/// neighbours of the attackers" signalling.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// The attack link.
    pub suspect_link: (NodeId, NodeId),
    /// The soft decision at detection time.
    pub lambda: f64,
    /// `p_max` of the offending route set.
    pub p_max: f64,
    /// `Δ` of the offending route set.
    pub delta: f64,
    /// Mean ACK ratio over the tested suspicious paths (1.0 if none were
    /// testable).
    pub probe_ack_ratio: f64,
    /// How many suspicious paths were probe-tested.
    pub paths_tested: usize,
    /// Nodes to notify for isolation: the suspects themselves.
    pub isolate: Vec<NodeId>,
}

/// Outcome of one run of the procedure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum DetectionOutcome {
    /// No anomaly; these (maximally disjoint) routes go back to the source.
    Normal {
        /// The routes selected for use.
        selected_routes: Vec<Route>,
    },
    /// Step 1 fired but step 2/3 could not confirm: the paths pass probes
    /// and the statistics are not conclusive. The routes avoiding the
    /// suspect link are preferred.
    SuspiciousUnconfirmed {
        /// The step-1 analysis.
        analysis: SamAnalysis,
        /// Routes avoiding the suspect link, if any exist.
        selected_routes: Vec<Route>,
    },
    /// Attack confirmed; alert raised.
    Confirmed {
        /// The full report for the response module.
        report: AttackReport,
        /// The step-1 analysis.
        analysis: SamAnalysis,
    },
}

impl DetectionOutcome {
    /// Whether the outcome is a confirmed attack.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, DetectionOutcome::Confirmed { .. })
    }
}

/// The three-step procedure runner.
#[derive(Clone, Debug, Default)]
pub struct Procedure {
    detector: SamDetector,
    cfg: ProcedureConfig,
}

impl Procedure {
    /// Procedure with explicit detector and configuration.
    pub fn new(detector: SamDetector, cfg: ProcedureConfig) -> Self {
        Procedure { detector, cfg }
    }

    /// The detector used in step 1.
    pub fn detector(&self) -> &SamDetector {
        &self.detector
    }

    /// Execute the procedure over the route set of one discovery.
    pub fn execute<T: ProbeTransport>(
        &self,
        routes: &[Route],
        profile: &NormalProfile,
        transport: &mut T,
    ) -> DetectionOutcome {
        // Step 1: statistical analysis.
        let analysis = self.detector.analyze(routes, profile);
        if !analysis.anomalous {
            return DetectionOutcome::Normal {
                selected_routes: select_disjoint(routes, self.cfg.routes_to_source),
            };
        }

        // Step 2: probe the suspicious paths.
        let suspicious = self.detector.suspicious_routes(routes, &analysis);
        let tested: Vec<ProbeOutcome> = suspicious
            .iter()
            .take(self.cfg.max_paths_tested)
            .map(|route| transport.probe(route, self.cfg.probes_per_path))
            .collect();
        let paths_tested = tested.len();
        let probe_ack_ratio = if tested.is_empty() {
            1.0
        } else {
            tested.iter().map(|o| o.ack_ratio()).sum::<f64>() / tested.len() as f64
        };

        // Step 3: confirm on failed probes OR overwhelming statistics.
        let probes_failed = paths_tested > 0 && probe_ack_ratio < self.cfg.ack_threshold;
        let stats_conclusive = analysis.lambda < self.cfg.lambda_confirm;
        if probes_failed || stats_conclusive {
            let link = analysis
                .suspect_link
                .expect("anomalous set has at least one link");
            let (a, b) = link.endpoints();
            let report = AttackReport {
                suspect_link: (a, b),
                lambda: analysis.lambda,
                p_max: analysis.features.p_max,
                delta: analysis.features.delta,
                probe_ack_ratio,
                paths_tested,
                isolate: vec![a, b],
            };
            return DetectionOutcome::Confirmed { report, analysis };
        }

        // Anomalous but unconfirmed: steer traffic around the suspect.
        let safe: Vec<Route> = match analysis.suspect_link {
            Some(link) => routes
                .iter()
                .filter(|r| !r.contains_link(link))
                .cloned()
                .collect(),
            None => routes.to_vec(),
        };
        DetectionOutcome::SuspiciousUnconfirmed {
            analysis,
            selected_routes: select_disjoint(&safe, self.cfg.routes_to_source),
        }
    }
}

/// A transport whose probes always succeed (for tests and for modelling a
/// network with no data-plane attacker).
pub fn all_ack_transport() -> impl ProbeTransport {
    |_: &Route, count: u32| ProbeOutcome {
        sent: count,
        acked: count,
    }
}

/// A transport that drops everything crossing `link` (blackhole behind a
/// wormhole).
pub fn blackhole_transport(link: Link) -> impl ProbeTransport {
    move |route: &Route, count: u32| {
        let crosses = route.contains_link(link);
        ProbeOutcome {
            sent: count,
            acked: if crosses { 0 } else { count },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::SamDetector;
    use manet_sim::NodeId;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    fn trained_profile() -> NormalProfile {
        let sets = vec![
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 4, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
            vec![
                r(&[0, 1, 4, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 13, 9]),
                r(&[0, 12, 11, 9]),
            ],
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 2, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
            vec![
                r(&[0, 1, 6, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
        ];
        NormalProfile::train(&sets, 20)
    }

    /// Six captured routes funnelling into 8-9: p_max = 6/23 ≈ 0.26
    /// (z ≈ 4.8, λ ≈ 0.06) and the paper's tie case Δ = 0 (7-8 and 8-9
    /// both appear six times).
    fn attacked_routes() -> Vec<Route> {
        vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 9]),
            r(&[0, 2, 7, 8, 9]),
            r(&[0, 3, 7, 8, 9]),
            r(&[0, 10, 7, 8, 9]),
            r(&[0, 12, 7, 8, 9]),
        ]
    }

    #[test]
    fn normal_routes_come_back_selected() {
        let p = trained_profile();
        let proc = Procedure::default();
        let routes = vec![r(&[0, 1, 2, 9]), r(&[0, 3, 4, 9]), r(&[0, 5, 6, 9])];
        let mut t = all_ack_transport();
        match proc.execute(&routes, &p, &mut t) {
            DetectionOutcome::Normal { selected_routes } => {
                assert!(!selected_routes.is_empty());
                assert!(selected_routes.len() <= 3);
            }
            other => panic!("expected Normal, got {other:?}"),
        }
    }

    #[test]
    fn blackholing_wormhole_is_confirmed_with_failed_probes() {
        let p = trained_profile();
        let proc = Procedure::default();
        let routes = attacked_routes();
        let link = Link::new(NodeId(7), NodeId(8));
        let mut t = blackhole_transport(link);
        let outcome = proc.execute(&routes, &p, &mut t);
        let DetectionOutcome::Confirmed { report, analysis } = outcome else {
            panic!("expected Confirmed");
        };
        assert_eq!(report.suspect_link, (NodeId(7), NodeId(8)));
        assert_eq!(report.isolate, vec![NodeId(7), NodeId(8)]);
        assert!(report.probe_ack_ratio < 0.5);
        assert!(report.paths_tested > 0);
        assert!(analysis.anomalous);
    }

    #[test]
    fn pure_relay_wormhole_confirmed_by_statistics_alone() {
        // All probes ACK (the wormhole relays data), but λ is tiny.
        let p = trained_profile();
        let proc = Procedure::default();
        let routes = attacked_routes();
        let mut t = all_ack_transport();
        let outcome = proc.execute(&routes, &p, &mut t);
        assert!(
            outcome.is_confirmed(),
            "statistics alone should confirm: {outcome:?}"
        );
    }

    #[test]
    fn borderline_anomaly_with_good_probes_is_unconfirmed() {
        let p = trained_profile();
        // Loosen the statistical confirmation so only probes could confirm.
        let cfg = ProcedureConfig {
            lambda_confirm: 0.0,
            ..ProcedureConfig::default()
        };
        let proc = Procedure::new(SamDetector::default(), cfg);
        let routes = attacked_routes();
        let mut t = all_ack_transport();
        match proc.execute(&routes, &p, &mut t) {
            DetectionOutcome::SuspiciousUnconfirmed {
                selected_routes, ..
            } => {
                // Every route crosses the suspect link → nothing safe.
                assert!(selected_routes.is_empty());
            }
            other => panic!("expected SuspiciousUnconfirmed, got {other:?}"),
        }
    }

    #[test]
    fn probe_count_and_path_cap_are_respected() {
        let p = trained_profile();
        let cfg = ProcedureConfig {
            probes_per_path: 7,
            max_paths_tested: 2,
            ..ProcedureConfig::default()
        };
        let proc = Procedure::new(SamDetector::default(), cfg);
        let routes = attacked_routes();
        let mut calls: Vec<u32> = Vec::new();
        {
            let mut t = |_route: &Route, count: u32| {
                calls.push(count);
                ProbeOutcome {
                    sent: count,
                    acked: 0,
                }
            };
            let outcome = proc.execute(&routes, &p, &mut t);
            assert!(outcome.is_confirmed());
        }
        assert_eq!(calls, vec![7, 7], "2 paths × 7 probes");
    }
}
