//! # sam — Statistical Analysis of Multi-path routing
//!
//! The primary contribution of *"Wormhole Attacks Detection in Wireless Ad
//! Hoc Networks: A Statistical Analysis Approach"* (Song, Qian, Li, 2005):
//! detect wormhole attacks — and localize the attacker pair — using
//! **nothing but the route set one multi-path route discovery already
//! produces**. No clock synchronization, no GPS, no directional antennas,
//! no protocol changes.
//!
//! The insight: a wormhole tunnel is so attractive to route requests that
//! the tunneled link appears in almost every discovered route. Two scalar
//! features expose it:
//!
//! * [`p_max`](stats::LinkStats::p_max) — the maximum link relative
//!   frequency (paper eq. 3), and
//! * [`Δ`](stats::LinkStats::delta) — the normalized gap between the
//!   most- and second-most-frequent links (eq. 7),
//!
//! plus, as an alternative, the [PMF of link relative
//! frequencies](pmf::Pmf) compared against a trained profile (Fig. 5).
//!
//! Modules, mirroring the paper's architecture:
//!
//! * [`stats`] — eq. (1)–(7) over a route set;
//! * [`pmf`] — the PMF-profile alternative;
//! * [`profile`] — normal-condition training + the eq. (8)–(9)
//!   forgetting-factor update;
//! * [`detector`] — step 1: anomaly decision + soft decision λ;
//! * [`procedure`] — the three-step procedure of Fig. 3 (analysis →
//!   probe test → confirm/localize/report);
//! * [`ids`] — the agent model of Fig. 4 (local data collection, local
//!   detection, response);
//! * [`collaboration`] — fusion of many agents' reports into global
//!   verdicts ("global coordinated detection").
//!
//! ```
//! use manet_routing::Route;
//! use manet_sim::NodeId;
//! use sam::prelude::*;
//!
//! let n = |i| NodeId(i);
//! let route = |ids: &[u32]| Route::new(ids.iter().map(|&i| n(i)).collect()).unwrap();
//!
//! // Under a wormhole the link 7-8 rides on every route …
//! let captured = vec![
//!     route(&[0, 7, 8, 9]),
//!     route(&[0, 1, 7, 8, 2, 9]),
//!     route(&[0, 3, 7, 8, 4, 9]),
//! ];
//! let stats = LinkStats::from_routes(&captured);
//! // … so SAM fingers it as the attack link.
//! assert_eq!(stats.suspect_link().unwrap().endpoints(), (n(7), n(8)));
//! assert!(stats.p_max() > 0.2);
//! assert!(stats.delta() > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collaboration;
pub mod detect;
pub mod detector;
pub mod explain;
pub mod hypothesis;
pub mod ids;
pub mod linkmap;
pub mod pmf;
pub mod procedure;
pub mod profile;
pub mod stats;

/// One-stop imports for SAM users.
pub mod prelude {
    pub use crate::collaboration::{GlobalCoordinator, LinkVerdict, NodeVerdict};
    pub use crate::detect::{
        run_procedure, verdict_from_sam, Detector, DetectorEvidence, DetectorInput,
        DetectorOutcome, DetectorRegistry, DetectorVerdict, DetectorVote, EnsembleDetector,
        GeometricConfig, GeometricDetector, TopologyObservations, Voting, ZScoreConfig,
        ZScoreNeighborDetector, DETECTOR_NAMES,
    };
    pub use crate::detector::{SamAnalysis, SamConfig, SamDetector, CALIBRATED_Z_THRESHOLD};
    pub use crate::explain::{Explanation, HopProvenance, RouteExplanation};
    pub use crate::hypothesis::{mann_whitney_u, normal_cdf, MannWhitney};
    pub use crate::ids::{AgentAction, AgentConfig, AgentPhase, IdsAgent, ResponseMsg};
    pub use crate::linkmap::LinkMap;
    pub use crate::pmf::{Pmf, PmfProfile, PmfVerdict};
    pub use crate::procedure::{
        all_ack_transport, blackhole_transport, AttackReport, DetectionOutcome, ProbeTransport,
        Procedure, ProcedureConfig,
    };
    pub use crate::profile::{forgetting_update, FeatureStat, NormalProfile, STD_FLOOR};
    pub use crate::stats::{common_endpoints, LinkStats, RefLinkStats, RouteSetFeatures};
}

pub use prelude::*;
