//! The SAM anomaly detector (step 1 of the paper's procedure).
//!
//! Computes the feature vector of a route set, scores it against the
//! trained [`NormalProfile`], and produces the **soft decision λ ∈ [0, 1]**
//! the paper's IDS model requires: "0 means being attacked with absolute
//! certainty and 1 means no attack has been detected with absolute
//! certainty".

use crate::pmf::{Pmf, PmfProfile, PmfVerdict};
use crate::profile::NormalProfile;
use crate::stats::{LinkStats, RouteSetFeatures};
use manet_routing::Route;
use manet_sim::Link;
use serde::{Deserialize, Serialize};

/// Detector configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SamConfig {
    /// Z-score above which a feature is anomalous (λ crosses 0.5 here).
    pub z_threshold: f64,
    /// Steepness of the z → λ logistic map.
    pub lambda_steepness: f64,
    /// Bins for the PMF comparison (must match the trained profile).
    pub pmf_bins: usize,
    /// Whether to include the PMF-profile rule as extra evidence.
    pub use_pmf: bool,
    /// Below this many routes the detector abstains (λ = 1, no anomaly):
    /// SAM needs "enough routing information … obtained by multi-path
    /// routing".
    pub min_routes: usize,
    /// **Extension** (off by default, to stay faithful to the paper's
    /// feature set): also score the mean route length. A wormhole
    /// shortens routes dramatically; this catches the hidden-replay
    /// variant whose per-link signature is diluted across the attackers'
    /// neighbour pairs (see `ablation_hidden_detection`).
    pub use_hop_feature: bool,
}

impl Default for SamConfig {
    fn default() -> Self {
        SamConfig {
            z_threshold: 3.0,
            lambda_steepness: 1.5,
            pmf_bins: 20,
            use_pmf: true,
            min_routes: 1,
            use_hop_feature: false,
        }
    }
}

/// The small-sample calibration threshold: at ~10-run training scale the
/// 3σ library default under-fires on held-out traffic, so everything
/// operational (experiments, serving, the detector registry) runs at
/// 2.5σ. This constant is the **only** place the calibration lives.
pub const CALIBRATED_Z_THRESHOLD: f64 = 2.5;

impl SamConfig {
    /// The operational calibration shared by the experiments and the
    /// serving tier (see [`CALIBRATED_Z_THRESHOLD`]). The detector
    /// registry names this configuration `"sam"`.
    pub fn calibrated() -> Self {
        SamConfig {
            z_threshold: CALIBRATED_Z_THRESHOLD,
            ..SamConfig::default()
        }
    }
}

/// Everything SAM concludes about one route set.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SamAnalysis {
    /// The extracted features (eq. 1–7).
    pub features: RouteSetFeatures,
    /// Z-score of `p_max` against the profile.
    pub z_p_max: f64,
    /// Z-score of `Δ` against the profile.
    pub z_delta: f64,
    /// Shortening score of the mean route length: positive when routes
    /// are shorter than the trained profile (the wormhole direction).
    /// Only contributes to the verdict when `use_hop_feature` is set.
    pub z_hops_short: f64,
    /// PMF comparison evidence, when enabled and trained.
    pub pmf_verdict: Option<PmfVerdict>,
    /// Analytic p-value of the observed `p_max` under the trained PMF
    /// (the paper's "estimate the probability of high usage link using
    /// theoretical analysis"): `P(max of |L| normal frequencies ≥ p_max)`.
    /// Diagnostic only — it does not gate the verdict.
    pub p_max_pvalue: Option<f64>,
    /// The soft decision: 0 = attacked with certainty, 1 = certainly
    /// normal.
    pub lambda: f64,
    /// Step-1 outcome: anomalous patterns occurred.
    pub anomalous: bool,
    /// The most frequent link — the attack link if the anomaly is real.
    pub suspect_link: Option<Link>,
    /// True if the profile had no training data (analysis abstained).
    pub untrained: bool,
}

/// The SAM detector.
#[derive(Clone, Debug, Default)]
pub struct SamDetector {
    cfg: SamConfig,
}

impl SamDetector {
    /// Detector with explicit configuration.
    pub fn new(cfg: SamConfig) -> Self {
        SamDetector { cfg }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SamConfig {
        &self.cfg
    }

    /// Map a z-score to the soft decision λ: logistic centred on the
    /// threshold, decreasing in z.
    pub fn lambda_of_z(&self, z: f64) -> f64 {
        let s = self.cfg.lambda_steepness;
        1.0 / (1.0 + (s * (z - self.cfg.z_threshold)).exp())
    }

    /// Analyze one route set against a trained profile.
    pub fn analyze(&self, routes: &[Route], profile: &NormalProfile) -> SamAnalysis {
        let stats = LinkStats::from_routes(routes);
        let features = stats.summary();
        // Localize while ignoring endpoint-adjacent links (trivially
        // frequent; see `LinkStats::suspect_link_excluding`).
        let (src, dst) = crate::stats::common_endpoints(routes);
        let exclude: Vec<_> = src.into_iter().chain(dst).collect();
        let suspect_link = stats.suspect_link_excluding(&exclude);

        if !profile.is_trained() || routes.len() < self.cfg.min_routes {
            return SamAnalysis {
                features,
                z_p_max: 0.0,
                z_delta: 0.0,
                z_hops_short: 0.0,
                pmf_verdict: None,
                p_max_pvalue: None,
                lambda: 1.0,
                anomalous: false,
                suspect_link,
                untrained: !profile.is_trained(),
            };
        }

        let z_p_max = profile.p_max.z(features.p_max);
        let z_delta = profile.delta.z(features.delta);
        // Shorter-than-normal routes are the wormhole direction, so the
        // signal is the *negated* z-score of the mean length (tighter
        // relative floor — see `FeatureStat::z_with_rel_floor`).
        let z_hops_short = -profile.hops.z_with_rel_floor(features.mean_hops, 0.1);
        // "It is expected that both statistics will be much higher under
        // wormhole attack … Together they will determine whether the
        // routing protocol is under wormhole attack."  We score on the
        // stronger of the two signals: either feature spiking is evidence
        // (Δ alone goes to 0 in the paper's tie cases, p_max alone can
        // stay moderate on long honest routes).
        let mut z = z_p_max.max(z_delta);
        if self.cfg.use_hop_feature {
            z = z.max(z_hops_short);
        }
        let lambda = self.lambda_of_z(z);

        let pmf_verdict = if self.cfg.use_pmf && profile.pmf.sample_count() > 0 {
            let live = Pmf::from_samples(profile.pmf.bin_count(), &stats.relative_frequencies());
            Some(PmfProfile::new(profile.pmf.clone()).check(&live))
        } else {
            None
        };
        let p_max_pvalue = (profile.pmf.sample_count() > 0).then(|| {
            profile
                .pmf
                .max_order_pvalue(features.p_max, features.distinct_links)
        });

        let anomalous =
            z > self.cfg.z_threshold || pmf_verdict.map(|v| v.anomalous).unwrap_or(false);

        SamAnalysis {
            features,
            z_p_max,
            z_delta,
            z_hops_short,
            pmf_verdict,
            p_max_pvalue,
            lambda,
            anomalous,
            suspect_link,
            untrained: false,
        }
    }

    /// The routes that traverse the suspect link — the "suspicious paths"
    /// step 2 tests.
    pub fn suspicious_routes<'r>(
        &self,
        routes: &'r [Route],
        analysis: &SamAnalysis,
    ) -> Vec<&'r Route> {
        match analysis.suspect_link {
            Some(link) => routes.iter().filter(|r| r.contains_link(link)).collect(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::NodeId;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    /// Spread-out normal sets: five routes each, at most one repeated
    /// link, so the trained profile is p_max ≈ 0.10 ± 0.033 and
    /// Δ ≈ 0.25 ± 0.25.
    fn normal_sets() -> Vec<Vec<Route>> {
        vec![
            // All links distinct: p_max = 1/15.
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 4, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
            vec![
                r(&[0, 1, 4, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 13, 9]),
                r(&[0, 12, 11, 9]),
            ],
            // One repeated link (2-9): p_max = 2/15.
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 2, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
            vec![
                r(&[0, 1, 6, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
        ]
    }

    /// A captured set: link 7-8 on every one of six routes with diverse
    /// exits (p_max = 6/28 ≈ 0.21, z ≈ 3.4; Δ = 5/6).
    fn attacked_set() -> Vec<Route> {
        vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 2, 9]),
            r(&[0, 3, 7, 8, 4, 9]),
            r(&[0, 5, 7, 8, 6, 9]),
            r(&[0, 10, 7, 8, 11, 9]),
            r(&[0, 12, 7, 8, 13, 9]),
        ]
    }

    #[test]
    fn lambda_is_monotone_decreasing_in_z() {
        let d = SamDetector::default();
        let l0 = d.lambda_of_z(0.0);
        let l3 = d.lambda_of_z(3.0);
        let l6 = d.lambda_of_z(6.0);
        assert!(l0 > l3 && l3 > l6);
        assert!((l3 - 0.5).abs() < 1e-9, "λ = 0.5 at the threshold");
        assert!(l0 > 0.9);
        assert!(l6 < 0.05);
    }

    #[test]
    fn attack_set_is_flagged_and_localized() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let analysis = d.analyze(&attacked_set(), &profile);
        assert!(analysis.anomalous, "{analysis:?}");
        assert!(analysis.lambda < 0.5);
        assert_eq!(analysis.suspect_link, Some(Link::new(NodeId(7), NodeId(8))));
    }

    #[test]
    fn normal_set_passes() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let live = vec![r(&[0, 1, 2, 9]), r(&[0, 5, 6, 9]), r(&[0, 3, 4, 9])];
        let analysis = d.analyze(&live, &profile);
        assert!(!analysis.anomalous, "{analysis:?}");
        assert!(analysis.lambda > 0.5);
    }

    #[test]
    fn untrained_profile_abstains() {
        let profile = NormalProfile::train(&[], 20);
        let d = SamDetector::default();
        let analysis = d.analyze(&attacked_set(), &profile);
        assert!(analysis.untrained);
        assert!(!analysis.anomalous);
        assert_eq!(analysis.lambda, 1.0);
        // The suspect link is still computed (it is just the mode).
        assert!(analysis.suspect_link.is_some());
    }

    #[test]
    fn too_few_routes_abstain() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let cfg = SamConfig {
            min_routes: 3,
            ..SamConfig::default()
        };
        let d = SamDetector::new(cfg);
        let analysis = d.analyze(&[r(&[0, 7, 9])], &profile);
        assert!(!analysis.anomalous);
        assert!(!analysis.untrained);
    }

    #[test]
    fn suspicious_routes_filters_on_suspect_link() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let routes = attacked_set();
        let analysis = d.analyze(&routes, &profile);
        let sus = d.suspicious_routes(&routes, &analysis);
        assert_eq!(sus.len(), routes.len(), "all attacked routes cross 7-8");
        // A set with an *interior* repeated link (1-2): endpoint-adjacent
        // links are excluded from localization, so 1-2 is the suspect and
        // only its two routes are suspicious.
        let routes2 = vec![r(&[0, 1, 2, 9]), r(&[0, 3, 1, 2, 9]), r(&[0, 4, 5, 9])];
        let analysis2 = d.analyze(&routes2, &profile);
        assert_eq!(
            analysis2.suspect_link,
            Some(Link::new(NodeId(1), NodeId(2)))
        );
        let sus2 = d.suspicious_routes(&routes2, &analysis2);
        assert_eq!(sus2.len(), 2, "only the 1-2 routes are suspicious");
    }

    #[test]
    fn hop_feature_catches_shortened_routes_when_enabled() {
        // A "hidden wormhole" set: link frequencies look normal (all
        // distinct links) but routes are drastically shorter than the
        // trained 3-hop profile.
        let shortened = vec![
            r(&[0, 1, 9]),
            r(&[0, 3, 9]),
            r(&[0, 5, 9]),
            r(&[0, 10, 9]),
            r(&[0, 12, 9]),
        ];
        let profile = NormalProfile::train(&normal_sets(), 20);
        let plain = SamDetector::default();
        let plain_analysis = plain.analyze(&shortened, &profile);
        assert!(
            !plain_analysis.anomalous,
            "link features alone must not fire: {plain_analysis:?}"
        );
        let hops = SamDetector::new(SamConfig {
            use_hop_feature: true,
            ..SamConfig::default()
        });
        let hops_analysis = hops.analyze(&shortened, &profile);
        assert!(hops_analysis.z_hops_short > 3.0, "{hops_analysis:?}");
        assert!(hops_analysis.anomalous);
        assert!(hops_analysis.lambda < 0.5);
    }

    #[test]
    fn hop_feature_ignores_longer_routes() {
        // Longer-than-normal routes are not the wormhole direction.
        let longer = vec![
            r(&[0, 1, 2, 3, 4, 9]),
            r(&[0, 5, 6, 10, 11, 9]),
            r(&[0, 12, 13, 14, 15, 9]),
        ];
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::new(SamConfig {
            use_hop_feature: true,
            ..SamConfig::default()
        });
        let a = d.analyze(&longer, &profile);
        assert!(a.z_hops_short < 0.0, "{a:?}");
    }

    #[test]
    fn pvalue_separates_attack_from_normal() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let attacked = d.analyze(&attacked_set(), &profile);
        let normal = d.analyze(
            &[r(&[0, 1, 2, 9]), r(&[0, 3, 4, 9]), r(&[0, 5, 6, 9])],
            &profile,
        );
        let pa = attacked.p_max_pvalue.unwrap();
        let pn = normal.p_max_pvalue.unwrap();
        assert!(pa < 0.01, "attack p-value {pa}");
        assert!(pa < pn, "attack {pa} vs normal {pn}");
    }

    #[test]
    fn pmf_evidence_is_reported_when_enabled() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::default();
        let analysis = d.analyze(&attacked_set(), &profile);
        let v = analysis.pmf_verdict.expect("pmf enabled by default");
        assert!(v.anomalous, "{v:?}");
        let d2 = SamDetector::new(SamConfig {
            use_pmf: false,
            ..SamConfig::default()
        });
        assert!(d2.analyze(&attacked_set(), &profile).pmf_verdict.is_none());
    }
}
