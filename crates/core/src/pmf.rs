//! The PMF-profile alternative detector (paper §III, Fig. 5).
//!
//! "An alternative statistic is the probability mass function (PMF) of
//! random variable n/N … The samples collected from the network under
//! normal condition will form the training set … the distribution of n/N
//! obtained using real-time samples will be compared with the profile."
//!
//! We histogram the link relative frequencies into fixed-width bins over
//! `[0, 1]` and compare live histograms to a trained profile by total
//! variation distance. The tail mass above the profile's maximum observed
//! frequency — the "isolated outlier far apart from other links" the paper
//! highlights in Fig. 5 — is exposed separately.

use serde::{Deserialize, Serialize};

/// A binned probability mass function over `[0, 1]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Pmf {
    bins: Vec<f64>,
    samples: u64,
}

impl Pmf {
    /// An empty PMF with `bins` equal-width bins over `[0, 1]`.
    pub fn new(bins: usize) -> Self {
        assert!(bins >= 2, "need at least two bins");
        Pmf {
            bins: vec![0.0; bins],
            samples: 0,
        }
    }

    /// Build from samples (values outside `[0, 1]` clamp to the edge
    /// bins).
    pub fn from_samples(bins: usize, samples: &[f64]) -> Self {
        let mut pmf = Pmf::new(bins);
        for &s in samples {
            pmf.add_sample(s);
        }
        pmf
    }

    /// Add one sample.
    pub fn add_sample(&mut self, v: f64) {
        let idx = self.bin_of(v);
        // Store counts; normalization happens on read.
        self.bins[idx] += 1.0;
        self.samples += 1;
    }

    /// Index of the bin containing `v`.
    pub fn bin_of(&self, v: f64) -> usize {
        let k = self.bins.len();
        let clamped = v.clamp(0.0, 1.0);
        ((clamped * k as f64) as usize).min(k - 1)
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Number of accumulated samples.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Probability mass of bin `i`.
    pub fn mass(&self, i: usize) -> f64 {
        if self.samples == 0 {
            return 0.0;
        }
        self.bins[i] / self.samples as f64
    }

    /// The full normalized mass vector.
    pub fn masses(&self) -> Vec<f64> {
        (0..self.bins.len()).map(|i| self.mass(i)).collect()
    }

    /// Centre of bin `i` (for plotting/reporting).
    pub fn bin_center(&self, i: usize) -> f64 {
        (i as f64 + 0.5) / self.bins.len() as f64
    }

    /// Largest sample value's bin upper edge — "how far right the support
    /// reaches".
    pub fn support_max(&self) -> f64 {
        match self.bins.iter().rposition(|&c| c > 0.0) {
            Some(i) => (i as f64 + 1.0) / self.bins.len() as f64,
            None => 0.0,
        }
    }

    /// Total variation distance to another PMF with the same binning:
    /// `½ Σ |p_i − q_i|` ∈ `[0, 1]`.
    pub fn total_variation(&self, other: &Pmf) -> f64 {
        assert_eq!(self.bins.len(), other.bins.len(), "PMFs must share binning");
        0.5 * (0..self.bins.len())
            .map(|i| (self.mass(i) - other.mass(i)).abs())
            .sum::<f64>()
    }

    /// Mass at or above frequency `threshold` — the outlier tail.
    pub fn tail_mass(&self, threshold: f64) -> f64 {
        let start = self.bin_of(threshold);
        (start..self.bins.len()).map(|i| self.mass(i)).sum()
    }

    /// Empirical CDF at bin resolution: the mass of all bins up to and
    /// including the one containing `x`.
    pub fn cdf(&self, x: f64) -> f64 {
        let end = self.bin_of(x);
        (0..=end).map(|i| self.mass(i)).sum()
    }

    /// The paper's "theoretical analysis since the PMF is available":
    /// the probability that the **maximum** of `n` independent link
    /// frequencies drawn from this (normal-condition) PMF reaches `x` or
    /// beyond — `1 − F(x⁻)ⁿ`, with `F(x⁻)` the mass strictly below `x`'s
    /// bin. Evaluating it at an observed `p_max` with `n` = the number of
    /// distinct links yields a p-value for the null hypothesis "this
    /// route set is normal".
    pub fn max_order_pvalue(&self, x: f64, n: usize) -> f64 {
        if self.samples == 0 || n == 0 {
            return 1.0;
        }
        let below = self.bin_of(x);
        let f_minus: f64 = (0..below).map(|i| self.mass(i)).sum();
        1.0 - f_minus.powi(i32::try_from(n).unwrap_or(i32::MAX))
    }
}

/// PMF-based anomaly check: a live PMF is anomalous relative to a trained
/// profile if it puts mass beyond the profile's support (an isolated
/// high-frequency link) or diverges in total variation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PmfProfile {
    profile: Pmf,
    /// Extra head-room over the trained support before the tail rule
    /// fires (one bin by default).
    slack_bins: usize,
    /// Total-variation distance above which the distribution-shape rule
    /// fires.
    tv_threshold: f64,
}

impl PmfProfile {
    /// Wrap a trained normal-condition PMF.
    ///
    /// By default only the outlier-tail rule is active (`tv_threshold`
    /// just above 1 can never fire): raw total-variation distance between
    /// small-sample histograms is dominated by how many routes a discovery
    /// happened to return, not by attacks. The paper's Fig. 5 signature is
    /// the isolated high-frequency outlier, which the tail rule captures.
    /// Use [`PmfProfile::with_thresholds`] to opt into the TV rule.
    pub fn new(profile: Pmf) -> Self {
        PmfProfile {
            profile,
            slack_bins: 1,
            tv_threshold: 1.01,
        }
    }

    /// Override thresholds.
    pub fn with_thresholds(profile: Pmf, slack_bins: usize, tv_threshold: f64) -> Self {
        PmfProfile {
            profile,
            slack_bins,
            tv_threshold,
        }
    }

    /// The trained PMF.
    pub fn profile(&self) -> &Pmf {
        &self.profile
    }

    /// Check a live PMF; returns the evidence.
    pub fn check(&self, live: &Pmf) -> PmfVerdict {
        let support = self.profile.support_max();
        let slack = self.slack_bins as f64 / self.profile.bin_count() as f64;
        let beyond = live.tail_mass((support + slack).min(1.0));
        let tv = self.profile.total_variation(live);
        PmfVerdict {
            outlier_mass: beyond,
            total_variation: tv,
            anomalous: beyond > 0.0 || tv > self.tv_threshold,
        }
    }
}

/// Result of a PMF-profile comparison.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PmfVerdict {
    /// Live mass beyond the trained support (plus slack).
    pub outlier_mass: f64,
    /// Total variation distance to the profile.
    pub total_variation: f64,
    /// Whether either rule fired.
    pub anomalous: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_masses() {
        let pmf = Pmf::from_samples(10, &[0.05, 0.05, 0.15, 0.95]);
        assert_eq!(pmf.sample_count(), 4);
        assert!((pmf.mass(0) - 0.5).abs() < 1e-12);
        assert!((pmf.mass(1) - 0.25).abs() < 1e-12);
        assert!((pmf.mass(9) - 0.25).abs() < 1e-12);
        let total: f64 = pmf.masses().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edge_values_clamp() {
        let pmf = Pmf::from_samples(4, &[0.0, 1.0, 1.5, -0.2]);
        assert_eq!(pmf.bin_of(0.0), 0);
        assert_eq!(pmf.bin_of(1.0), 3);
        assert!((pmf.mass(0) - 0.5).abs() < 1e-12);
        assert!((pmf.mass(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn support_max_tracks_rightmost_bin() {
        let pmf = Pmf::from_samples(10, &[0.12, 0.31]);
        assert!((pmf.support_max() - 0.4).abs() < 1e-12);
        assert_eq!(Pmf::new(10).support_max(), 0.0);
    }

    #[test]
    fn total_variation_properties() {
        let a = Pmf::from_samples(10, &[0.1, 0.1, 0.2]);
        let b = Pmf::from_samples(10, &[0.9, 0.9, 0.8]);
        assert_eq!(a.total_variation(&a), 0.0);
        assert!(
            (a.total_variation(&b) - 1.0).abs() < 1e-12,
            "disjoint supports"
        );
        assert!((a.total_variation(&b) - b.total_variation(&a)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share binning")]
    fn tv_requires_same_binning() {
        let _ = Pmf::new(4).total_variation(&Pmf::new(8));
    }

    #[test]
    fn profile_flags_outlier_links() {
        // Normal: frequencies spread below 0.10 (Fig. 5 normal system).
        let normal = Pmf::from_samples(20, &[0.02, 0.04, 0.05, 0.06, 0.09, 0.07, 0.03]);
        let profile = PmfProfile::new(normal);
        // Attacked: one link at 0.16+ (Fig. 5 under attack).
        let attacked = Pmf::from_samples(20, &[0.02, 0.04, 0.05, 0.06, 0.17, 0.03]);
        let v = profile.check(&attacked);
        assert!(v.anomalous);
        assert!(v.outlier_mass > 0.0);
        // A live set like the training data is clean.
        let live_normal = Pmf::from_samples(20, &[0.03, 0.05, 0.06, 0.08]);
        let v2 = profile.check(&live_normal);
        assert!(!v2.anomalous, "{v2:?}");
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let pmf = Pmf::from_samples(10, &[0.05, 0.25, 0.55]);
        assert!(pmf.cdf(0.0) <= pmf.cdf(0.3));
        assert!((pmf.cdf(1.0) - 1.0).abs() < 1e-12);
        assert!((pmf.cdf(0.3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn max_order_pvalue_behaves_like_a_p_value() {
        // Normal frequencies live below 0.10.
        let pmf = Pmf::from_samples(20, &[0.02, 0.04, 0.05, 0.06, 0.07, 0.08, 0.03, 0.04]);
        // An observation inside the support is unremarkable.
        let p_inside = pmf.max_order_pvalue(0.06, 20);
        assert!(p_inside > 0.5, "{p_inside}");
        // An observation far beyond the support is (almost) impossible
        // under the null.
        let p_outlier = pmf.max_order_pvalue(0.18, 20);
        assert!(p_outlier < 1e-9, "{p_outlier}");
        // More draws make large maxima more likely: p grows with n.
        assert!(pmf.max_order_pvalue(0.06, 50) >= pmf.max_order_pvalue(0.06, 5));
        // Degenerate cases.
        assert_eq!(Pmf::new(10).max_order_pvalue(0.5, 10), 1.0);
        assert_eq!(pmf.max_order_pvalue(0.5, 0), 1.0);
    }

    #[test]
    fn tail_mass_accumulates_from_threshold() {
        let pmf = Pmf::from_samples(10, &[0.05, 0.55, 0.95]);
        assert!((pmf.tail_mass(0.5) - 2.0 / 3.0).abs() < 1e-12);
        assert!((pmf.tail_mass(0.0) - 1.0).abs() < 1e-12);
    }
}
