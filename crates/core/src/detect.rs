//! Detector plurality: the [`Detector`] trait, the alternative detectors,
//! ensemble voting, and the name registry.
//!
//! The paper's SAM detector is one statistical signal — relative
//! link-frequency (`p_max`, eq. 3) and the frequency gap (`Δ`, eq. 7) —
//! and it has a known blind spot: a `Selective` attacker that tunnels
//! only a fraction of RREQs dilutes exactly the statistic SAM watches.
//! Related work contributes two *independent* signals that survive
//! selectivity:
//!
//! * **z-score + neighbor tables** (cf. Zeng, arXiv 2505.09405): a
//!   wormhole endpoint accumulates implausibly many distinct neighbors
//!   across the captured routes, and the tunneled link's occurrence
//!   count is a within-set outlier — both scored as z-scores against the
//!   set's own distribution ([`ZScoreNeighborDetector`]);
//! * **geometric distance-vs-range** (cf. the complex-wormhole taxonomy
//!   in Azer & El-Kassas, arXiv 0906.1245): a claimed neighbor link
//!   whose Euclidean length exceeds the radio range is physically
//!   impossible, however rarely it is used ([`GeometricDetector`]).
//!
//! Every detector consumes the same [`DetectorInput`] (the discovery's
//! route set, the trained profile, and — where available — topology
//! observations) and returns a unified [`DetectorVerdict`] with a
//! *normalized* anomaly score: `1.0` is the decision boundary for every
//! detector, so ROC sweeps and ensemble voting compare like with like.
//! [`EnsembleDetector`] combines members under configurable
//! [`Voting`]; [`DetectorRegistry`] names the standard detectors for the
//! serving tier and the experiments, and is the **single calibration
//! path**: the small-sample `z = 2.5` threshold lives in
//! [`SamConfig::calibrated`](crate::detector::SamConfig::calibrated) and
//! nowhere else.

use crate::detector::{SamAnalysis, SamConfig, SamDetector};
use crate::procedure::{AttackReport, ProbeTransport, ProcedureConfig};
use crate::profile::NormalProfile;
use crate::stats::{common_endpoints, LinkStats};
use manet_routing::{select_disjoint, ProbeOutcome, Route};
use manet_sim::{Link, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Node positions plus the radio range — the side information the
/// [`GeometricDetector`] checks claimed links against. Kept as plain
/// data (not the simulator's `Topology`) so the detection core stays
/// independent of the engine: a deployment would source this from GPS
/// claims or a site survey.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopologyObservations {
    /// `(x, y)` per node, indexed by node id.
    pub positions: Vec<(f64, f64)>,
    /// Maximum radio range: two nodes farther apart than this cannot be
    /// genuine neighbors.
    pub range: f64,
}

impl TopologyObservations {
    /// Observations from explicit positions and a radio range.
    pub fn new(positions: Vec<(f64, f64)>, range: f64) -> Self {
        TopologyObservations { positions, range }
    }

    /// Euclidean distance between two nodes, `None` if either id is
    /// outside the observed set.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let pa = self.positions.get(a.0 as usize)?;
        let pb = self.positions.get(b.0 as usize)?;
        Some(((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt())
    }
}

/// Everything a detector may consume for one decision.
#[derive(Clone, Copy)]
pub struct DetectorInput<'a> {
    /// The route set of one multi-path discovery.
    pub routes: &'a [Route],
    /// The trained normal-condition profile.
    pub profile: &'a NormalProfile,
    /// Topology observations, when the deployment has them. Wire
    /// requests carry none; detectors that need them abstain.
    pub topology: Option<&'a TopologyObservations>,
}

impl<'a> DetectorInput<'a> {
    /// Input from routes and a profile, no topology observations.
    pub fn new(routes: &'a [Route], profile: &'a NormalProfile) -> Self {
        DetectorInput {
            routes,
            profile,
            topology: None,
        }
    }

    /// Attach topology observations.
    pub fn with_topology(mut self, topology: &'a TopologyObservations) -> Self {
        self.topology = Some(topology);
        self
    }
}

/// One member's contribution to an ensemble decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectorVote {
    /// Member detector name.
    pub detector: String,
    /// The member's anomaly decision.
    pub anomalous: bool,
    /// The member's normalized score.
    pub score: f64,
    /// Effective voting weight (0 when the member abstained).
    pub weight: f64,
}

/// Per-detector evidence for the explainer — one variant per detector
/// kind, so an [`Explanation`](crate::explain::Explanation) can carry
/// whichever detector produced the verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum DetectorEvidence {
    /// SAM frequency statistics (eq. 1–7 against the trained profile).
    Sam {
        /// Z-score of `p_max` against the profile.
        z_p_max: f64,
        /// Z-score of `Δ` against the profile.
        z_delta: f64,
        /// Shortening score of the mean route length.
        z_hops_short: f64,
        /// PMF-profile rule outcome, when enabled and trained.
        pmf_anomalous: Option<bool>,
        /// True when the profile had no training data.
        untrained: bool,
    },
    /// Within-set z-scores of link counts and neighbor-table sizes.
    NeighborZ {
        /// Largest link-count z-score over non-endpoint links.
        max_link_z: f64,
        /// Largest neighbor-table-size z-score over interior nodes.
        max_degree_z: f64,
        /// Distinct links tallied.
        distinct_links: u64,
        /// Interior nodes whose neighbor table was scored.
        nodes_scored: u64,
    },
    /// Claimed-link length vs. radio range.
    Geometric {
        /// Distinct claimed links with known positions.
        checked_links: u64,
        /// Links longer than `range × tolerance`.
        violations: u64,
        /// Largest `length / range` ratio observed.
        max_stretch: f64,
    },
    /// The detector abstained (not enough data, or missing side
    /// information such as topology observations).
    Abstained {
        /// Why the detector abstained.
        reason: String,
    },
    /// Ensemble decision: the member votes.
    Ensemble {
        /// One vote per member, in member order.
        votes: Vec<DetectorVote>,
    },
}

/// The unified verdict every detector returns.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectorVerdict {
    /// Name of the detector that produced this verdict.
    pub detector: String,
    /// Anomaly decision at the detector's configured threshold.
    pub anomalous: bool,
    /// Normalized anomaly score: the raw signal divided by the
    /// configured threshold, so `1.0` is the decision boundary for every
    /// detector and ROC sweeps compare detectors on one axis.
    pub score: f64,
    /// Soft decision λ ∈ [0, 1] (0 = attacked with certainty).
    pub lambda: f64,
    /// `p_max` of the route set (eq. 3) — context for the report.
    pub p_max: f64,
    /// `Δ` of the route set (eq. 7) — context for the report.
    pub delta: f64,
    /// The localized attack link, when one was identified.
    pub suspect_link: Option<Link>,
    /// Detector-specific evidence for the explainer.
    pub evidence: DetectorEvidence,
}

impl DetectorVerdict {
    /// Whether the detector abstained rather than decided.
    pub fn abstained(&self) -> bool {
        matches!(self.evidence, DetectorEvidence::Abstained { .. })
    }
}

/// A wormhole detector: consumes discovery evidence, returns a unified
/// verdict. Implementations must be deterministic in their input.
pub trait Detector: Send + Sync {
    /// Registry name of this detector (`"sam"`, `"zscore"`, …).
    fn name(&self) -> &str;
    /// Decide whether `input` shows a wormhole.
    fn detect(&self, input: &DetectorInput) -> DetectorVerdict;
}

/// Map a completed SAM analysis to the unified verdict — the exact field
/// correspondence the differential harness pins: `anomalous`, `λ`,
/// `p_max`, `Δ`, and the suspect link are copied, never recomputed.
pub fn verdict_from_sam(cfg: &SamConfig, analysis: &SamAnalysis) -> DetectorVerdict {
    let mut z = analysis.z_p_max.max(analysis.z_delta);
    if cfg.use_hop_feature {
        z = z.max(analysis.z_hops_short);
    }
    DetectorVerdict {
        detector: "sam".to_string(),
        anomalous: analysis.anomalous,
        score: z / cfg.z_threshold,
        lambda: analysis.lambda,
        p_max: analysis.features.p_max,
        delta: analysis.features.delta,
        suspect_link: analysis.suspect_link,
        evidence: DetectorEvidence::Sam {
            z_p_max: analysis.z_p_max,
            z_delta: analysis.z_delta,
            z_hops_short: analysis.z_hops_short,
            pmf_anomalous: analysis.pmf_verdict.map(|v| v.anomalous),
            untrained: analysis.untrained,
        },
    }
}

impl Detector for SamDetector {
    fn name(&self) -> &str {
        "sam"
    }

    fn detect(&self, input: &DetectorInput) -> DetectorVerdict {
        let analysis = self.analyze(input.routes, input.profile);
        verdict_from_sam(self.config(), &analysis)
    }
}

/// Population standard deviation; 0 for empty/singleton samples.
fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Logistic soft decision shared by the alternative detectors: 0.5 at
/// the threshold, decreasing in the signal.
fn lambda_of(signal: f64, threshold: f64, steepness: f64) -> f64 {
    1.0 / (1.0 + (steepness * (signal - threshold)).exp())
}

/// [`ZScoreNeighborDetector`] configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ZScoreConfig {
    /// Z-score above which the set is anomalous.
    pub z_threshold: f64,
    /// Steepness of the z → λ logistic map.
    pub lambda_steepness: f64,
    /// Below this many routes the detector abstains.
    pub min_routes: usize,
    /// Below this many distinct links the within-set distribution is
    /// meaningless and the detector abstains.
    pub min_links: usize,
}

impl Default for ZScoreConfig {
    fn default() -> Self {
        ZScoreConfig {
            z_threshold: SamConfig::calibrated().z_threshold,
            lambda_steepness: 1.5,
            min_routes: 3,
            min_links: 4,
        }
    }
}

/// Per-node neighbor-table deltas plus z-scored link counts.
///
/// Two within-set signals, needing no trained profile:
///
/// * **link counts** — each non-endpoint link's occurrence count is
///   z-scored against the mean/std of all link counts in the set; the
///   tunneled link is an extreme outlier;
/// * **neighbor tables** — each interior node's distinct-neighbor count
///   (from route adjacency) is z-scored the same way; a wormhole
///   endpoint pairs with a different entry/exit node on nearly every
///   route, so its table balloons.
///
/// The score is the larger z divided by the threshold.
#[derive(Clone, Debug, Default)]
pub struct ZScoreNeighborDetector {
    cfg: ZScoreConfig,
}

impl ZScoreNeighborDetector {
    /// Detector with explicit configuration.
    pub fn new(cfg: ZScoreConfig) -> Self {
        ZScoreNeighborDetector { cfg }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ZScoreConfig {
        &self.cfg
    }
}

impl Detector for ZScoreNeighborDetector {
    fn name(&self) -> &str {
        "zscore"
    }

    fn detect(&self, input: &DetectorInput) -> DetectorVerdict {
        let stats = LinkStats::from_routes(input.routes);
        let features = stats.summary();
        let abstain = |reason: String| DetectorVerdict {
            detector: "zscore".to_string(),
            anomalous: false,
            score: 0.0,
            lambda: 1.0,
            p_max: features.p_max,
            delta: features.delta,
            suspect_link: None,
            evidence: DetectorEvidence::Abstained { reason },
        };
        if input.routes.len() < self.cfg.min_routes {
            return abstain(format!(
                "{} routes < min_routes {}",
                input.routes.len(),
                self.cfg.min_routes
            ));
        }
        if stats.distinct_links() < self.cfg.min_links {
            return abstain(format!(
                "{} distinct links < min_links {}",
                stats.distinct_links(),
                self.cfg.min_links
            ));
        }

        let (src, dst) = common_endpoints(input.routes);
        let exclude: Vec<NodeId> = src.into_iter().chain(dst).collect();
        let excluded = |n: NodeId| exclude.contains(&n);

        // Signal 1: within-set z of each non-endpoint link's count.
        let counts: Vec<f64> = stats.counts().map(|(_, c)| f64::from(c)).collect();
        let (mean, std) = mean_std(&counts);
        let mut max_link_z = 0.0f64;
        if std > 1e-9 {
            for (link, c) in stats.counts() {
                let (a, b) = link.endpoints();
                if excluded(a) || excluded(b) {
                    continue;
                }
                max_link_z = max_link_z.max((f64::from(c) - mean) / std);
            }
        }

        // Signal 2: within-set z of each interior node's neighbor-table
        // size. BTree containers keep the tally order-independent.
        let mut tables: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for route in input.routes {
            for link in route.links() {
                let (a, b) = link.endpoints();
                tables.entry(a.0).or_default().insert(b.0);
                tables.entry(b.0).or_default().insert(a.0);
            }
        }
        let degrees: Vec<f64> = tables
            .iter()
            .filter(|(&n, _)| !excluded(NodeId(n)))
            .map(|(_, t)| t.len() as f64)
            .collect();
        let (dmean, dstd) = mean_std(&degrees);
        let mut max_degree_z = 0.0f64;
        if dstd > 1e-9 {
            for d in &degrees {
                max_degree_z = max_degree_z.max((d - dmean) / dstd);
            }
        }

        let z = max_link_z.max(max_degree_z);
        let anomalous = z > self.cfg.z_threshold;
        DetectorVerdict {
            detector: "zscore".to_string(),
            anomalous,
            score: z / self.cfg.z_threshold,
            lambda: lambda_of(z, self.cfg.z_threshold, self.cfg.lambda_steepness),
            p_max: features.p_max,
            delta: features.delta,
            // Localize like SAM: the most frequent non-endpoint link.
            suspect_link: stats.suspect_link_excluding(&exclude),
            evidence: DetectorEvidence::NeighborZ {
                max_link_z,
                max_degree_z,
                distinct_links: stats.distinct_links() as u64,
                nodes_scored: degrees.len() as u64,
            },
        }
    }
}

/// [`GeometricDetector`] configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GeometricConfig {
    /// A claimed link longer than `range × stretch_tolerance` is a
    /// violation (the slack absorbs position measurement error).
    pub stretch_tolerance: f64,
    /// Steepness of the stretch → λ logistic map.
    pub lambda_steepness: f64,
}

impl Default for GeometricConfig {
    fn default() -> Self {
        GeometricConfig {
            stretch_tolerance: 1.25,
            lambda_steepness: 4.0,
        }
    }
}

/// Claimed-link length vs. radio range.
///
/// Every link claimed by a discovered route is checked against the
/// [`TopologyObservations`]: two nodes farther apart than the radio
/// range cannot be genuine neighbors, so such a claim is a tunnel —
/// *regardless of how rarely the attacker uses it*. This is the signal
/// that survives `Selective` tunneling: one tunneled route in the set is
/// enough. Without topology observations the detector abstains.
#[derive(Clone, Debug, Default)]
pub struct GeometricDetector {
    cfg: GeometricConfig,
}

impl GeometricDetector {
    /// Detector with explicit configuration.
    pub fn new(cfg: GeometricConfig) -> Self {
        GeometricDetector { cfg }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &GeometricConfig {
        &self.cfg
    }
}

impl Detector for GeometricDetector {
    fn name(&self) -> &str {
        "geometric"
    }

    fn detect(&self, input: &DetectorInput) -> DetectorVerdict {
        let stats = LinkStats::from_routes(input.routes);
        let features = stats.summary();
        let Some(obs) = input.topology else {
            return DetectorVerdict {
                detector: "geometric".to_string(),
                anomalous: false,
                score: 0.0,
                lambda: 1.0,
                p_max: features.p_max,
                delta: features.delta,
                suspect_link: None,
                evidence: DetectorEvidence::Abstained {
                    reason: "no topology observations".to_string(),
                },
            };
        };

        let mut checked = 0u64;
        let mut violations = 0u64;
        // Longest claimed link, ties broken on endpoint ids so the pick
        // is independent of tabulation iteration order.
        let mut worst: Option<(f64, Link)> = None;
        for (link, _) in stats.counts() {
            let (a, b) = link.endpoints();
            let Some(d) = obs.distance(a, b) else {
                continue;
            };
            checked += 1;
            let stretch = if obs.range > 0.0 { d / obs.range } else { 0.0 };
            if stretch > self.cfg.stretch_tolerance {
                violations += 1;
            }
            let replace = match worst {
                None => true,
                Some((ws, wl)) => {
                    stretch > ws
                        || (stretch == ws && (link.lo().0, link.hi().0) < (wl.lo().0, wl.hi().0))
                }
            };
            if replace {
                worst = Some((stretch, link));
            }
        }
        let max_stretch = worst.map(|(s, _)| s).unwrap_or(0.0);

        let anomalous = violations > 0;
        DetectorVerdict {
            detector: "geometric".to_string(),
            anomalous,
            score: if self.cfg.stretch_tolerance > 0.0 {
                max_stretch / self.cfg.stretch_tolerance
            } else {
                max_stretch
            },
            lambda: lambda_of(
                max_stretch,
                self.cfg.stretch_tolerance,
                self.cfg.lambda_steepness,
            ),
            p_max: features.p_max,
            delta: features.delta,
            // The suspect is the longest claimed link — only meaningful
            // once it violates the range.
            suspect_link: if anomalous {
                worst.map(|(_, l)| l)
            } else {
                None
            },
            evidence: DetectorEvidence::Geometric {
                checked_links: checked,
                violations,
                max_stretch,
            },
        }
    }
}

/// How an [`EnsembleDetector`] combines member decisions. Abstaining
/// members never vote: they are excluded from the denominator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Voting {
    /// Anomalous if any voting member is anomalous.
    Any,
    /// Anomalous if a strict majority of voting members are anomalous.
    Majority,
    /// Anomalous if the anomalous members' weight *strictly* exceeds
    /// half the voting weight — an exact tie is **not** anomalous.
    /// Weights are per-member, in member order; missing entries count 1.
    Weighted(Vec<f64>),
}

/// Combines member detectors under a [`Voting`] rule.
///
/// The ensemble score is voting-consistent for `Any` (max member score)
/// and `Majority` (the k-th largest member score, k the strict-majority
/// count): `score > 1.0` iff the vote passes. For `Weighted` the score
/// is the weighted mean of member scores — a smooth surrogate; the
/// decision itself always comes from the weight rule.
pub struct EnsembleDetector {
    members: Vec<Arc<dyn Detector>>,
    voting: Voting,
}

impl EnsembleDetector {
    /// Ensemble over explicit members.
    pub fn new(members: Vec<Arc<dyn Detector>>, voting: Voting) -> Self {
        EnsembleDetector { members, voting }
    }

    /// The standard ensemble: calibrated SAM + z-score + geometric under
    /// `Any` voting (the detectors are independent signals, so one
    /// firing is evidence; the roc experiment quantifies the FPR cost).
    pub fn standard() -> Self {
        EnsembleDetector::new(
            vec![
                Arc::new(SamDetector::new(SamConfig::calibrated())),
                Arc::new(ZScoreNeighborDetector::default()),
                Arc::new(GeometricDetector::default()),
            ],
            Voting::Any,
        )
    }

    /// The voting rule in effect.
    pub fn voting(&self) -> &Voting {
        &self.voting
    }
}

impl Detector for EnsembleDetector {
    fn name(&self) -> &str {
        "ensemble"
    }

    fn detect(&self, input: &DetectorInput) -> DetectorVerdict {
        let verdicts: Vec<DetectorVerdict> = self.members.iter().map(|m| m.detect(input)).collect();
        let weight_of = |i: usize| match &self.voting {
            Voting::Weighted(w) => w.get(i).copied().unwrap_or(1.0),
            _ => 1.0,
        };
        let votes: Vec<DetectorVote> = verdicts
            .iter()
            .enumerate()
            .map(|(i, v)| DetectorVote {
                detector: v.detector.clone(),
                anomalous: v.anomalous,
                score: v.score,
                weight: if v.abstained() { 0.0 } else { weight_of(i) },
            })
            .collect();
        let voters: Vec<&DetectorVerdict> = verdicts.iter().filter(|v| !v.abstained()).collect();

        let anomalous = match &self.voting {
            Voting::Any => voters.iter().any(|v| v.anomalous),
            Voting::Majority => {
                let yes = voters.iter().filter(|v| v.anomalous).count();
                yes * 2 > voters.len()
            }
            Voting::Weighted(_) => {
                let total: f64 = votes.iter().map(|v| v.weight).sum();
                let yes: f64 = votes.iter().filter(|v| v.anomalous).map(|v| v.weight).sum();
                yes * 2.0 > total
            }
        };

        let score = match &self.voting {
            Voting::Any => voters.iter().map(|v| v.score).fold(0.0, f64::max),
            Voting::Majority => {
                let mut scores: Vec<f64> = voters.iter().map(|v| v.score).collect();
                scores.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let k = voters.len() / 2; // k-th largest, 0-indexed
                scores.get(k).copied().unwrap_or(0.0)
            }
            Voting::Weighted(_) => {
                let total: f64 = votes.iter().map(|v| v.weight).sum();
                if total > 0.0 {
                    votes.iter().map(|v| v.weight * v.score).sum::<f64>() / total
                } else {
                    0.0
                }
            }
        };

        // Suspect: the highest-scoring anomalous voter's pick, falling
        // back to the highest-scoring voter. Member order breaks ties
        // (strict > keeps the first of equals).
        fn best_suspect<'v>(
            voters: &[&'v DetectorVerdict],
            anomalous_only: bool,
        ) -> Option<&'v DetectorVerdict> {
            let mut best: Option<&DetectorVerdict> = None;
            for v in voters {
                if v.suspect_link.is_none() || (anomalous_only && !v.anomalous) {
                    continue;
                }
                if best.map(|b| v.score > b.score).unwrap_or(true) {
                    best = Some(v);
                }
            }
            best
        }
        let suspect_link = best_suspect(&voters, true)
            .or_else(|| best_suspect(&voters, false))
            .and_then(|v| v.suspect_link);

        let lambda = voters.iter().map(|v| v.lambda).fold(1.0, f64::min);
        let (p_max, delta) = voters
            .first()
            .map(|v| (v.p_max, v.delta))
            .unwrap_or((0.0, 0.0));

        DetectorVerdict {
            detector: "ensemble".to_string(),
            anomalous,
            score,
            lambda,
            p_max,
            delta,
            suspect_link,
            evidence: DetectorEvidence::Ensemble { votes },
        }
    }
}

/// The named detectors one serving tier (or experiment) can select from.
///
/// This is the single configuration path for detection thresholds: the
/// `"sam"` entry carries the one [`SamConfig`], and everything that used
/// to duplicate the small-sample calibration (experiments, loadgen, the
/// gateway) now builds a registry instead.
#[derive(Clone)]
pub struct DetectorRegistry {
    entries: Vec<(&'static str, Arc<dyn Detector>)>,
}

/// Names in every standard registry, in registry order.
pub const DETECTOR_NAMES: &[&str] = &["sam", "zscore", "geometric", "ensemble"];

impl DetectorRegistry {
    /// The standard registry with the small-sample calibration
    /// ([`SamConfig::calibrated`], z = 2.5).
    pub fn calibrated() -> Self {
        DetectorRegistry::with_sam(SamConfig::calibrated())
    }

    /// The standard registry with an explicit SAM configuration (the
    /// ensemble member shares it).
    pub fn with_sam(sam_cfg: SamConfig) -> Self {
        let sam: Arc<dyn Detector> = Arc::new(SamDetector::new(sam_cfg));
        let zscore: Arc<dyn Detector> = Arc::new(ZScoreNeighborDetector::default());
        let geometric: Arc<dyn Detector> = Arc::new(GeometricDetector::default());
        let ensemble: Arc<dyn Detector> = Arc::new(EnsembleDetector::new(
            vec![sam.clone(), zscore.clone(), geometric.clone()],
            Voting::Any,
        ));
        DetectorRegistry {
            entries: vec![
                ("sam", sam),
                ("zscore", zscore),
                ("geometric", geometric),
                ("ensemble", ensemble),
            ],
        }
    }

    /// Look a detector up by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn Detector>> {
        self.entries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, d)| d)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Registered names, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(n, _)| *n).collect()
    }

    /// Comma-joined names for error messages.
    pub fn known(&self) -> String {
        self.names().join(", ")
    }
}

/// Outcome of [`run_procedure`] — the trait-path mirror of
/// [`DetectionOutcome`](crate::procedure::DetectionOutcome), carrying
/// the unified verdict instead of the SAM-specific analysis.
#[derive(Clone, Debug)]
pub enum DetectorOutcome {
    /// No anomaly; these routes go back to the source.
    Normal {
        /// Step-1 verdict.
        verdict: DetectorVerdict,
        /// Maximally disjoint routes selected for use.
        selected_routes: Vec<Route>,
    },
    /// Anomalous but neither probes nor statistics confirm.
    SuspiciousUnconfirmed {
        /// Step-1 verdict.
        verdict: DetectorVerdict,
        /// Routes avoiding the suspect link, if any.
        selected_routes: Vec<Route>,
    },
    /// Attack confirmed; alert raised.
    Confirmed {
        /// Step-1 verdict.
        verdict: DetectorVerdict,
        /// The full report for the response module.
        report: AttackReport,
    },
}

impl DetectorOutcome {
    /// Whether the outcome is a confirmed attack.
    pub fn is_confirmed(&self) -> bool {
        matches!(self, DetectorOutcome::Confirmed { .. })
    }

    /// The step-1 verdict, whatever the outcome.
    pub fn verdict(&self) -> &DetectorVerdict {
        match self {
            DetectorOutcome::Normal { verdict, .. }
            | DetectorOutcome::SuspiciousUnconfirmed { verdict, .. }
            | DetectorOutcome::Confirmed { verdict, .. } => verdict,
        }
    }
}

/// The three-step procedure over any [`Detector`] — step-for-step the
/// same logic as [`Procedure::execute`](crate::procedure::Procedure),
/// with the step-1 analysis swapped for `detector.detect`. The
/// differential harness pins that running it with a [`SamDetector`]
/// reproduces `Procedure::execute` byte-identically.
pub fn run_procedure<T: ProbeTransport>(
    detector: &dyn Detector,
    input: &DetectorInput,
    cfg: &ProcedureConfig,
    transport: &mut T,
) -> DetectorOutcome {
    // Step 1: analysis.
    let verdict = detector.detect(input);
    if !verdict.anomalous {
        return DetectorOutcome::Normal {
            verdict,
            selected_routes: select_disjoint(input.routes, cfg.routes_to_source),
        };
    }

    // Step 2: probe the suspicious paths (those crossing the suspect).
    let suspicious: Vec<&Route> = match verdict.suspect_link {
        Some(link) => input
            .routes
            .iter()
            .filter(|r| r.contains_link(link))
            .collect(),
        None => Vec::new(),
    };
    let tested: Vec<ProbeOutcome> = suspicious
        .iter()
        .take(cfg.max_paths_tested)
        .map(|route| transport.probe(route, cfg.probes_per_path))
        .collect();
    let paths_tested = tested.len();
    let probe_ack_ratio = if tested.is_empty() {
        1.0
    } else {
        tested.iter().map(|o| o.ack_ratio()).sum::<f64>() / tested.len() as f64
    };

    // Step 3: confirm on failed probes OR overwhelming statistics.
    let probes_failed = paths_tested > 0 && probe_ack_ratio < cfg.ack_threshold;
    let stats_conclusive = verdict.lambda < cfg.lambda_confirm;
    if probes_failed || stats_conclusive {
        if let Some(link) = verdict.suspect_link {
            let (a, b) = link.endpoints();
            let report = AttackReport {
                suspect_link: (a, b),
                lambda: verdict.lambda,
                p_max: verdict.p_max,
                delta: verdict.delta,
                probe_ack_ratio,
                paths_tested,
                isolate: vec![a, b],
            };
            return DetectorOutcome::Confirmed { verdict, report };
        }
        // Anomalous with no localizable link: report as unconfirmed
        // rather than fabricate a suspect.
    }

    let safe: Vec<Route> = match verdict.suspect_link {
        Some(link) => input
            .routes
            .iter()
            .filter(|r| !r.contains_link(link))
            .cloned()
            .collect(),
        None => input.routes.to_vec(),
    };
    let selected_routes = select_disjoint(&safe, cfg.routes_to_source);
    DetectorOutcome::SuspiciousUnconfirmed {
        verdict,
        selected_routes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::{DetectionOutcome, Procedure};

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    fn normal_sets() -> Vec<Vec<Route>> {
        vec![
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 4, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
            vec![
                r(&[0, 1, 4, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 13, 9]),
                r(&[0, 12, 11, 9]),
            ],
            vec![
                r(&[0, 1, 2, 9]),
                r(&[0, 3, 2, 9]),
                r(&[0, 5, 6, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
            vec![
                r(&[0, 1, 6, 9]),
                r(&[0, 3, 6, 9]),
                r(&[0, 5, 2, 9]),
                r(&[0, 10, 11, 9]),
                r(&[0, 12, 13, 9]),
            ],
        ]
    }

    fn attacked_set() -> Vec<Route> {
        vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 2, 9]),
            r(&[0, 3, 7, 8, 4, 9]),
            r(&[0, 5, 7, 8, 6, 9]),
            r(&[0, 10, 7, 8, 11, 9]),
            r(&[0, 12, 7, 8, 13, 9]),
        ]
    }

    fn normal_live() -> Vec<Route> {
        vec![r(&[0, 1, 2, 9]), r(&[0, 5, 6, 9]), r(&[0, 3, 4, 9])]
    }

    /// Positions for nodes 0..=13: everyone within one unit of their
    /// route neighbors except 7 and 8, which sit 10 units apart.
    fn observations() -> TopologyObservations {
        let mut positions = vec![(0.0, 0.0); 14];
        for (i, p) in positions.iter_mut().enumerate() {
            *p = (i as f64 * 0.1, 0.0);
        }
        positions[7] = (-5.0, 0.0);
        positions[8] = (5.0, 0.0);
        TopologyObservations::new(positions, 2.0)
    }

    #[test]
    fn sam_trait_verdict_mirrors_analyze() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = SamDetector::new(SamConfig::calibrated());
        for routes in [attacked_set(), normal_live()] {
            let analysis = d.analyze(&routes, &profile);
            let verdict = Detector::detect(&d, &DetectorInput::new(&routes, &profile));
            assert_eq!(verdict.detector, "sam");
            assert_eq!(verdict.anomalous, analysis.anomalous);
            assert_eq!(verdict.lambda, analysis.lambda);
            assert_eq!(verdict.p_max, analysis.features.p_max);
            assert_eq!(verdict.delta, analysis.features.delta);
            assert_eq!(verdict.suspect_link, analysis.suspect_link);
            assert_eq!(
                verdict.score,
                analysis.z_p_max.max(analysis.z_delta) / d.config().z_threshold
            );
        }
    }

    #[test]
    fn zscore_flags_the_attacked_set_and_passes_normal() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = ZScoreNeighborDetector::default();
        let routes = attacked_set();
        let v = d.detect(&DetectorInput::new(&routes, &profile));
        assert!(v.anomalous, "{v:?}");
        assert!(v.score > 1.0);
        assert_eq!(
            v.suspect_link,
            Some(Link::new(NodeId(7), NodeId(8))),
            "{v:?}"
        );
        let normal = normal_live();
        let vn = d.detect(&DetectorInput::new(&normal, &profile));
        assert!(!vn.anomalous, "{vn:?}");
        assert!(vn.score < 1.0);
    }

    #[test]
    fn zscore_needs_no_trained_profile() {
        let untrained = NormalProfile::train(&[], 20);
        let d = ZScoreNeighborDetector::default();
        let routes = attacked_set();
        let v = d.detect(&DetectorInput::new(&routes, &untrained));
        assert!(v.anomalous, "within-set statistics need no profile: {v:?}");
    }

    #[test]
    fn zscore_abstains_on_tiny_sets() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = ZScoreNeighborDetector::default();
        let routes = vec![r(&[0, 7, 8, 9])];
        let v = d.detect(&DetectorInput::new(&routes, &profile));
        assert!(v.abstained());
        assert!(!v.anomalous);
        assert_eq!(v.lambda, 1.0);
    }

    #[test]
    fn geometric_flags_the_impossible_link() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let obs = observations();
        let d = GeometricDetector::default();
        let routes = attacked_set();
        let v = d.detect(&DetectorInput::new(&routes, &profile).with_topology(&obs));
        assert!(v.anomalous, "{v:?}");
        assert_eq!(v.suspect_link, Some(Link::new(NodeId(7), NodeId(8))));
        match v.evidence {
            DetectorEvidence::Geometric {
                violations,
                max_stretch,
                ..
            } => {
                assert!(violations >= 1);
                assert!(max_stretch > 4.0, "10 units over range 2: {max_stretch}");
            }
            other => panic!("wrong evidence kind: {other:?}"),
        }
    }

    #[test]
    fn geometric_catches_a_single_tunneled_route() {
        // The selective-attacker scenario in miniature: the tunnel shows
        // up on ONE route only. Frequency statistics shrug; geometry
        // cannot.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let obs = observations();
        let mut routes = normal_live();
        routes.push(r(&[0, 7, 8, 9]));
        let sam = SamDetector::new(SamConfig::calibrated());
        let vs = Detector::detect(&sam, &DetectorInput::new(&routes, &profile));
        assert!(!vs.anomalous, "frequency alone must miss this: {vs:?}");
        let geo = GeometricDetector::default();
        let vg = geo.detect(&DetectorInput::new(&routes, &profile).with_topology(&obs));
        assert!(vg.anomalous, "{vg:?}");
        assert_eq!(vg.suspect_link, Some(Link::new(NodeId(7), NodeId(8))));
    }

    #[test]
    fn geometric_abstains_without_observations() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let d = GeometricDetector::default();
        let routes = attacked_set();
        let v = d.detect(&DetectorInput::new(&routes, &profile));
        assert!(v.abstained());
        assert!(!v.anomalous);
        assert_eq!(v.score, 0.0);
    }

    #[test]
    fn geometric_passes_in_range_links() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let obs = TopologyObservations::new(vec![(0.0, 0.0); 14], 2.0);
        let d = GeometricDetector::default();
        let routes = attacked_set();
        let v = d.detect(&DetectorInput::new(&routes, &profile).with_topology(&obs));
        assert!(!v.anomalous, "all distances 0: {v:?}");
    }

    /// A stub member with a fixed decision, for voting-rule tests.
    struct Fixed {
        name: &'static str,
        anomalous: bool,
        score: f64,
        abstain: bool,
    }

    impl Fixed {
        fn vote(name: &'static str, anomalous: bool, score: f64) -> Arc<dyn Detector> {
            Arc::new(Fixed {
                name,
                anomalous,
                score,
                abstain: false,
            })
        }

        fn abstain(name: &'static str) -> Arc<dyn Detector> {
            Arc::new(Fixed {
                name,
                anomalous: false,
                score: 0.0,
                abstain: true,
            })
        }
    }

    impl Detector for Fixed {
        fn name(&self) -> &str {
            self.name
        }

        fn detect(&self, _input: &DetectorInput) -> DetectorVerdict {
            DetectorVerdict {
                detector: self.name.to_string(),
                anomalous: self.anomalous,
                score: self.score,
                lambda: if self.anomalous { 0.1 } else { 0.9 },
                p_max: 0.2,
                delta: 0.5,
                suspect_link: self.anomalous.then(|| Link::new(NodeId(7), NodeId(8))),
                evidence: if self.abstain {
                    DetectorEvidence::Abstained {
                        reason: "stub".to_string(),
                    }
                } else {
                    DetectorEvidence::NeighborZ {
                        max_link_z: 0.0,
                        max_degree_z: 0.0,
                        distinct_links: 0,
                        nodes_scored: 0,
                    }
                },
            }
        }
    }

    fn ensemble_on(members: Vec<Arc<dyn Detector>>, voting: Voting) -> DetectorVerdict {
        let profile = NormalProfile::train(&[], 20);
        let routes = normal_live();
        EnsembleDetector::new(members, voting).detect(&DetectorInput::new(&routes, &profile))
    }

    #[test]
    fn ensemble_unanimous_negative_is_negative() {
        for voting in [
            Voting::Any,
            Voting::Majority,
            Voting::Weighted(vec![1.0; 3]),
        ] {
            let v = ensemble_on(
                vec![
                    Fixed::vote("a", false, 0.2),
                    Fixed::vote("b", false, 0.4),
                    Fixed::vote("c", false, 0.1),
                ],
                voting.clone(),
            );
            assert!(!v.anomalous, "{voting:?}: {v:?}");
            assert!(v.score < 1.0, "{voting:?}: {v:?}");
        }
    }

    #[test]
    fn one_of_three_fires_any_but_not_majority() {
        let members = || {
            vec![
                Fixed::vote("a", true, 1.8),
                Fixed::vote("b", false, 0.3),
                Fixed::vote("c", false, 0.2),
            ]
        };
        let any = ensemble_on(members(), Voting::Any);
        assert!(any.anomalous, "{any:?}");
        assert!(any.score > 1.0, "any score is the max: {any:?}");
        let majority = ensemble_on(members(), Voting::Majority);
        assert!(
            !majority.anomalous,
            "1 of 3 is not a majority: {majority:?}"
        );
        assert!(
            majority.score < 1.0,
            "majority score is the 2nd largest: {majority:?}"
        );
    }

    #[test]
    fn two_of_three_carry_a_majority() {
        let v = ensemble_on(
            vec![
                Fixed::vote("a", true, 1.8),
                Fixed::vote("b", true, 1.2),
                Fixed::vote("c", false, 0.2),
            ],
            Voting::Majority,
        );
        assert!(v.anomalous, "{v:?}");
        assert!(v.score > 1.0, "{v:?}");
    }

    #[test]
    fn weighted_tie_is_not_anomalous() {
        // 1.0 anomalous vs 1.0 total-half: an exact tie must lose.
        let v = ensemble_on(
            vec![Fixed::vote("a", true, 2.0), Fixed::vote("b", false, 0.1)],
            Voting::Weighted(vec![1.0, 1.0]),
        );
        assert!(!v.anomalous, "exact weight tie must not fire: {v:?}");
        // Tip the weight past half and it fires.
        let v2 = ensemble_on(
            vec![Fixed::vote("a", true, 2.0), Fixed::vote("b", false, 0.1)],
            Voting::Weighted(vec![1.01, 1.0]),
        );
        assert!(v2.anomalous, "{v2:?}");
    }

    #[test]
    fn abstaining_members_leave_the_denominator() {
        // One abstainer + one anomalous voter: a majority of the *voting*
        // members (1 of 1), so the ensemble fires.
        let v = ensemble_on(
            vec![Fixed::abstain("geo"), Fixed::vote("a", true, 1.5)],
            Voting::Majority,
        );
        assert!(v.anomalous, "{v:?}");
        match &v.evidence {
            DetectorEvidence::Ensemble { votes } => {
                assert_eq!(votes.len(), 2, "abstainers still appear in evidence");
                assert_eq!(votes[0].weight, 0.0);
                assert_eq!(votes[1].weight, 1.0);
            }
            other => panic!("wrong evidence kind: {other:?}"),
        }
    }

    #[test]
    fn standard_ensemble_catches_what_sam_misses() {
        // The motivating composition: one tunneled route, topology known.
        let profile = NormalProfile::train(&normal_sets(), 20);
        let obs = observations();
        let mut routes = normal_live();
        routes.push(r(&[0, 7, 8, 9]));
        let input = DetectorInput::new(&routes, &profile).with_topology(&obs);
        let sam = SamDetector::new(SamConfig::calibrated());
        assert!(!Detector::detect(&sam, &input).anomalous);
        let v = EnsembleDetector::standard().detect(&input);
        assert!(v.anomalous, "{v:?}");
        assert_eq!(v.suspect_link, Some(Link::new(NodeId(7), NodeId(8))));
    }

    #[test]
    fn registry_resolves_every_standard_name() {
        let reg = DetectorRegistry::calibrated();
        assert_eq!(reg.names(), DETECTOR_NAMES);
        for name in DETECTOR_NAMES {
            let d = reg.get(name).expect("registered");
            assert_eq!(d.name(), *name);
        }
        assert!(reg.get("frequency-hopper").is_none());
        assert!(!reg.contains("FREQ"));
        assert_eq!(reg.known(), "sam, zscore, geometric, ensemble");
    }

    /// Re-creatable probe transport so both procedure paths see the
    /// same outcomes.
    enum TestTransport {
        Blackhole(Link),
        AllAck,
    }

    impl ProbeTransport for TestTransport {
        fn probe(&mut self, route: &Route, count: u32) -> ProbeOutcome {
            match self {
                TestTransport::Blackhole(l) => ProbeOutcome {
                    sent: count,
                    acked: if route.contains_link(*l) { 0 } else { count },
                },
                TestTransport::AllAck => ProbeOutcome {
                    sent: count,
                    acked: count,
                },
            }
        }
    }

    #[test]
    fn run_procedure_with_sam_matches_concrete_procedure() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let cfg = ProcedureConfig::default();
        let sam = SamDetector::new(SamConfig::calibrated());
        let procedure = Procedure::new(sam.clone(), cfg);
        let transport = |blackhole: bool| {
            if blackhole {
                TestTransport::Blackhole(Link::new(NodeId(7), NodeId(8)))
            } else {
                TestTransport::AllAck
            }
        };
        for (routes, blackhole) in [
            (attacked_set(), true),
            (attacked_set(), false),
            (normal_live(), false),
        ] {
            let concrete = {
                let mut t = transport(blackhole);
                procedure.execute(&routes, &profile, &mut t)
            };
            let traited = {
                let mut t = transport(blackhole);
                run_procedure(&sam, &DetectorInput::new(&routes, &profile), &cfg, &mut t)
            };
            match (&concrete, &traited) {
                (
                    DetectionOutcome::Normal { selected_routes: a },
                    DetectorOutcome::Normal {
                        selected_routes: b, ..
                    },
                ) => assert_eq!(a, b),
                (
                    DetectionOutcome::SuspiciousUnconfirmed {
                        analysis,
                        selected_routes: a,
                    },
                    DetectorOutcome::SuspiciousUnconfirmed {
                        verdict,
                        selected_routes: b,
                    },
                ) => {
                    assert_eq!(a, b);
                    assert_eq!(verdict.lambda, analysis.lambda);
                }
                (
                    DetectionOutcome::Confirmed {
                        report: a,
                        analysis,
                    },
                    DetectorOutcome::Confirmed {
                        report: b, verdict, ..
                    },
                ) => {
                    assert_eq!(a.suspect_link, b.suspect_link);
                    assert_eq!(a.lambda, b.lambda);
                    assert_eq!(a.p_max, b.p_max);
                    assert_eq!(a.delta, b.delta);
                    assert_eq!(a.probe_ack_ratio, b.probe_ack_ratio);
                    assert_eq!(a.paths_tested, b.paths_tested);
                    assert_eq!(a.isolate, b.isolate);
                    assert_eq!(verdict.lambda, analysis.lambda);
                }
                (c, t) => panic!("outcomes diverge: {c:?} vs {t:?}"),
            }
        }
    }

    #[test]
    fn evidence_round_trips_through_the_value_model() {
        let profile = NormalProfile::train(&normal_sets(), 20);
        let obs = observations();
        let routes = attacked_set();
        let reg = DetectorRegistry::calibrated();
        for name in DETECTOR_NAMES {
            let v = reg
                .get(name)
                .unwrap()
                .detect(&DetectorInput::new(&routes, &profile).with_topology(&obs));
            let line = serde_json::to_string(&v).expect("serializes");
            let back: DetectorVerdict = serde_json::from_str(&line).expect("deserializes");
            assert_eq!(back, v, "{name}");
        }
    }
}
