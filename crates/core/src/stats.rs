//! Link-frequency statistics over a route set — the paper's equations
//! (1)–(7).
//!
//! For the route set `R` of one discovery with links `L = {l_i}`:
//!
//! * `n_i` — times link `l_i` appears across `R` (eq. 2's summands),
//! * `N = Σ n_i` — total non-distinct links (eq. 2),
//! * `p_i = n_i / N` — relative frequency (eq. 1),
//! * `p_max = max_i p_i` (eq. 3),
//! * `n_max, n_2nd` (eq. 4–6), and
//! * `Δ = (n_max − n_2nd) / n_max` (eq. 7).
//!
//! Under a wormhole the tunneled link rides on almost every route, so both
//! `p_max` and `Δ` jump; the attackers are the endpoints of the
//! most-frequent link.

use crate::linkmap::LinkMap;
use manet_routing::Route;
use manet_sim::{Link, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The endpoints every route of a discovery shares: `(src, dst)` when all
/// routes agree, `None` per side otherwise (or for an empty set). This is
/// what SAM excludes when localizing the attack link.
pub fn common_endpoints(routes: &[Route]) -> (Option<NodeId>, Option<NodeId>) {
    let Some(first) = routes.first() else {
        return (None, None);
    };
    let src = first.src();
    let dst = first.dst();
    (
        routes.iter().all(|r| r.src() == src).then_some(src),
        routes.iter().all(|r| r.dst() == dst).then_some(dst),
    )
}

/// Link-frequency table of one route set.
///
/// Tabulation runs on the compact [`LinkMap`] (packed `u32` endpoint
/// ids, open addressing) rather than `HashMap<Link, u32>`; the
/// pre-overhaul implementation survives as [`RefLinkStats`] and the
/// differential harness asserts the two produce identical tables.
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    counts: LinkMap<u32>,
    total: u64,
    routes: usize,
}

impl LinkStats {
    /// Tally all links of `routes`.
    pub fn from_routes(routes: &[Route]) -> Self {
        let mut counts: LinkMap<u32> = LinkMap::new();
        let mut total = 0u64;
        for route in routes {
            for link in route.links() {
                *counts.entry_or_default(link) += 1;
                total += 1;
            }
        }
        LinkStats {
            counts,
            total,
            routes: routes.len(),
        }
    }

    /// Number of routes tallied (`|R|`).
    pub fn route_count(&self) -> usize {
        self.routes
    }

    /// Number of distinct links (`|L|`).
    pub fn distinct_links(&self) -> usize {
        self.counts.len()
    }

    /// Total non-distinct link count (`N`, eq. 2).
    pub fn total_links(&self) -> u64 {
        self.total
    }

    /// Occurrence count of one link (`n_i`).
    pub fn count(&self, link: Link) -> u32 {
        self.counts.get(link).unwrap_or(0)
    }

    /// Relative frequency of one link (`p_i`, eq. 1).
    pub fn relative_frequency(&self, link: Link) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        f64::from(self.count(link)) / self.total as f64
    }

    /// All `(link, n_i)` pairs, unordered.
    pub fn counts(&self) -> impl Iterator<Item = (Link, u32)> + '_ {
        self.counts.iter()
    }

    /// All relative frequencies `n_i / N`, unordered — the samples whose
    /// PMF the paper plots in Fig. 5.
    pub fn relative_frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        let n = self.total as f64;
        self.counts.values().map(|c| f64::from(c) / n).collect()
    }

    /// The two largest counts `(n_max, n_2nd)`; zero-filled when there are
    /// fewer than two distinct links.
    pub fn top_two(&self) -> (u32, u32) {
        let mut best = 0u32;
        let mut second = 0u32;
        for c in self.counts.values() {
            if c > best {
                second = best;
                best = c;
            } else if c > second {
                second = c;
            }
        }
        (best, second)
    }

    /// `p_max` (eq. 3). Zero for an empty route set.
    pub fn p_max(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        f64::from(self.top_two().0) / self.total as f64
    }

    /// `Δ = (n_max − n_2nd)/n_max` (eq. 7). Zero when the top two counts
    /// tie — the paper's special case "when the attackers locate at the
    /// same row or column of the source node or destination node" — and
    /// zero for an empty set.
    pub fn delta(&self) -> f64 {
        let (nmax, n2nd) = self.top_two();
        if nmax == 0 {
            return 0.0;
        }
        f64::from(nmax - n2nd) / f64::from(nmax)
    }

    /// The most frequent link — SAM's attacker localization ("the
    /// malicious nodes can be identified by the attack link which has the
    /// highest relative frequency"). Ties broken by normalized link order
    /// for determinism.
    pub fn suspect_link(&self) -> Option<Link> {
        self.counts
            .iter()
            .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then_with(|| lb.cmp(la)))
            .map(|(l, _)| l)
    }

    /// Like [`LinkStats::suspect_link`], but prefer links **not incident
    /// to `exclude`** (typically the discovery's source and destination):
    /// every route starts and ends there, so endpoint-adjacent links are
    /// trivially frequent and can tie with the attack link when an
    /// attacker happens to sit within radio range of an endpoint. The
    /// destination runs SAM and knows both endpoints, so the exclusion
    /// costs nothing. Falls back to the global mode when exclusion leaves
    /// no candidate.
    pub fn suspect_link_excluding(&self, exclude: &[NodeId]) -> Option<Link> {
        self.counts
            .iter()
            .filter(|(l, _)| !exclude.iter().any(|&n| l.touches(n)))
            .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then_with(|| lb.cmp(la)))
            .map(|(l, _)| l)
            .or_else(|| self.suspect_link())
    }

    /// All links tied for the (exclusion-filtered) maximum count, sorted
    /// for determinism. When the captured routes share a prefix through
    /// the attackers (the source sits next to a wormhole endpoint), the
    /// whole shared chain ties at `n_max`; statistics alone cannot split
    /// the tie, so localization reports the tied set and step 2's probes
    /// narrow it down.
    pub fn top_links_excluding(&self, exclude: &[NodeId]) -> Vec<Link> {
        let candidates: Vec<(Link, u32)> = self
            .counts
            .iter()
            .filter(|(l, _)| !exclude.iter().any(|&n| l.touches(n)))
            .collect();
        let max = candidates.iter().map(|&(_, c)| c).max().unwrap_or(0);
        if max == 0 {
            return self.suspect_link().into_iter().collect();
        }
        let mut v: Vec<Link> = candidates
            .into_iter()
            .filter(|&(_, c)| c == max)
            .map(|(l, _)| l)
            .collect();
        v.sort();
        v
    }

    /// Mean route length in hops. Since every hop contributes one link,
    /// this is simply `N / |R|`. Not one of the paper's two features, but
    /// the paper invites extensions ("the statistical analysis method …
    /// may be applied to any routing attacks as long as certain statistics
    /// of the obtained routes change significantly") — and a wormhole
    /// shortens routes dramatically, which catches the hidden-replay
    /// variant whose link signature is diluted across neighbour pairs.
    pub fn mean_hops(&self) -> f64 {
        if self.routes == 0 {
            return 0.0;
        }
        self.total as f64 / self.routes as f64
    }

    /// Summarize into the serializable feature vector.
    pub fn summary(&self) -> RouteSetFeatures {
        RouteSetFeatures {
            routes: self.routes,
            distinct_links: self.distinct_links(),
            total_links: self.total,
            p_max: self.p_max(),
            delta: self.delta(),
            mean_hops: self.mean_hops(),
            suspect_link: self.suspect_link().map(|l| (l.lo().0, l.hi().0)),
        }
    }
}

/// The pre-overhaul link-frequency table: the exact `HashMap<Link, u32>`
/// tabulation [`LinkStats`] used before the [`LinkMap`] rewrite,
/// preserved as the reference path for the differential harness
/// (`tests/differential_hotpath.rs`). Only the feature surface the
/// harness compares is exposed.
#[derive(Clone, Debug, Default)]
pub struct RefLinkStats {
    counts: HashMap<Link, u32>,
    total: u64,
    routes: usize,
}

impl RefLinkStats {
    /// Tally all links of `routes` (pre-overhaul implementation).
    pub fn from_routes(routes: &[Route]) -> Self {
        let mut counts: HashMap<Link, u32> = HashMap::new();
        let mut total = 0u64;
        for route in routes {
            for link in route.links() {
                *counts.entry(link).or_insert(0) += 1;
                total += 1;
            }
        }
        RefLinkStats {
            counts,
            total,
            routes: routes.len(),
        }
    }

    /// Number of distinct links (`|L|`).
    pub fn distinct_links(&self) -> usize {
        self.counts.len()
    }

    /// Total non-distinct link count (`N`).
    pub fn total_links(&self) -> u64 {
        self.total
    }

    /// Occurrence count of one link (`n_i`).
    pub fn count(&self, link: Link) -> u32 {
        self.counts.get(&link).copied().unwrap_or(0)
    }

    /// All `(link, n_i)` pairs, unordered.
    pub fn counts(&self) -> impl Iterator<Item = (Link, u32)> + '_ {
        self.counts.iter().map(|(&l, &c)| (l, c))
    }

    /// The two largest counts `(n_max, n_2nd)`.
    pub fn top_two(&self) -> (u32, u32) {
        let mut best = 0u32;
        let mut second = 0u32;
        for &c in self.counts.values() {
            if c > best {
                second = best;
                best = c;
            } else if c > second {
                second = c;
            }
        }
        (best, second)
    }

    /// `p_max` (eq. 3).
    pub fn p_max(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        f64::from(self.top_two().0) / self.total as f64
    }

    /// `Δ` (eq. 7).
    pub fn delta(&self) -> f64 {
        let (nmax, n2nd) = self.top_two();
        if nmax == 0 {
            return 0.0;
        }
        f64::from(nmax - n2nd) / f64::from(nmax)
    }

    /// The most frequent link, same deterministic tie-break as
    /// [`LinkStats::suspect_link`].
    pub fn suspect_link(&self) -> Option<Link> {
        self.counts
            .iter()
            .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then_with(|| lb.cmp(la)))
            .map(|(&l, _)| l)
    }

    /// Number of routes tallied.
    pub fn route_count(&self) -> usize {
        self.routes
    }
}

/// The feature vector SAM extracts from one route discovery — what the SAM
/// module "transfers … to the local detection module".
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouteSetFeatures {
    /// `|R|`.
    pub routes: usize,
    /// `|L|`.
    pub distinct_links: usize,
    /// `N`.
    pub total_links: u64,
    /// Eq. 3.
    pub p_max: f64,
    /// Eq. 7.
    pub delta: f64,
    /// Mean route length (`N / |R|`) — the extension feature.
    pub mean_hops: f64,
    /// Endpoints of the most frequent link.
    pub suspect_link: Option<(u32, u32)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::NodeId;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    #[test]
    fn empty_set_is_all_zero() {
        let s = LinkStats::from_routes(&[]);
        assert_eq!(s.total_links(), 0);
        assert_eq!(s.p_max(), 0.0);
        assert_eq!(s.delta(), 0.0);
        assert_eq!(s.suspect_link(), None);
        assert!(s.relative_frequencies().is_empty());
    }

    #[test]
    fn counts_match_hand_computation() {
        // Routes: 0-1-2-5 and 0-1-3-5. Link 0-1 appears twice; the other
        // four links once each. N = 6.
        let routes = vec![r(&[0, 1, 2, 5]), r(&[0, 1, 3, 5])];
        let s = LinkStats::from_routes(&routes);
        assert_eq!(s.route_count(), 2);
        assert_eq!(s.distinct_links(), 5);
        assert_eq!(s.total_links(), 6);
        assert_eq!(s.count(Link::new(NodeId(0), NodeId(1))), 2);
        assert_eq!(s.count(Link::new(NodeId(1), NodeId(2))), 1);
        assert_eq!(s.count(Link::new(NodeId(9), NodeId(8))), 0);
        assert!((s.p_max() - 2.0 / 6.0).abs() < 1e-12);
        assert!((s.delta() - 0.5).abs() < 1e-12);
        assert_eq!(s.suspect_link(), Some(Link::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn relative_frequencies_sum_to_one() {
        let routes = vec![r(&[0, 1, 2]), r(&[0, 3, 2]), r(&[0, 1, 4, 2])];
        let s = LinkStats::from_routes(&routes);
        let sum: f64 = s.relative_frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_is_zero_on_tie() {
        // Two disjoint 2-hop routes: all counts are 1 → n_max = n_2nd.
        let routes = vec![r(&[0, 1, 5]), r(&[0, 2, 5])];
        let s = LinkStats::from_routes(&routes);
        assert_eq!(s.delta(), 0.0);
    }

    #[test]
    fn delta_is_one_for_single_distinct_link() {
        let routes = vec![r(&[0, 1]), r(&[0, 1])];
        let s = LinkStats::from_routes(&routes);
        assert_eq!(s.delta(), 1.0);
        assert_eq!(s.p_max(), 1.0);
    }

    #[test]
    fn wormhole_like_set_has_high_features() {
        // Simulated capture: the link 7-8 rides on every route.
        let routes = vec![
            r(&[0, 7, 8, 5]),
            r(&[0, 1, 7, 8, 5]),
            r(&[0, 2, 7, 8, 5]),
            r(&[0, 3, 7, 8, 4, 5]),
        ];
        let s = LinkStats::from_routes(&routes);
        assert_eq!(s.suspect_link(), Some(Link::new(NodeId(7), NodeId(8))));
        assert!(s.p_max() > 0.2);
        // The link 8-5 near the destination is also frequent (n=3 vs the
        // tunnel's 4), so Δ = 1/4 — still clearly positive.
        assert!(s.delta() >= 0.2);
    }

    #[test]
    fn suspect_tie_break_is_deterministic() {
        let routes = vec![r(&[0, 1, 2])]; // links 0-1 and 1-2, both ×1
        let s = LinkStats::from_routes(&routes);
        assert_eq!(s.suspect_link(), Some(Link::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn common_endpoints_detects_shared_and_mixed() {
        let a = r(&[0, 1, 9]);
        let b = r(&[0, 2, 9]);
        let c = r(&[3, 2, 9]);
        assert_eq!(
            common_endpoints(&[a.clone(), b.clone()]),
            (Some(NodeId(0)), Some(NodeId(9)))
        );
        assert_eq!(common_endpoints(&[a, c]), (None, Some(NodeId(9))));
        assert_eq!(common_endpoints(&[]), (None, None));
    }

    #[test]
    fn suspect_excluding_skips_endpoint_links() {
        // 0-1 is the global mode (×2) but touches the source; interior
        // link 1-2 (×2) should win under exclusion.
        let routes = vec![r(&[0, 1, 2, 9]), r(&[0, 1, 2, 5, 9]), r(&[0, 3, 4, 9])];
        let s = LinkStats::from_routes(&routes);
        assert_eq!(
            s.suspect_link_excluding(&[NodeId(0), NodeId(9)]),
            Some(Link::new(NodeId(1), NodeId(2)))
        );
        // With nothing excluded, ties go to the smallest link.
        assert_eq!(s.suspect_link(), Some(Link::new(NodeId(0), NodeId(1))));
    }

    #[test]
    fn suspect_excluding_falls_back_when_everything_is_excluded() {
        let routes = vec![r(&[0, 9])];
        let s = LinkStats::from_routes(&routes);
        assert_eq!(
            s.suspect_link_excluding(&[NodeId(0), NodeId(9)]),
            Some(Link::new(NodeId(0), NodeId(9))),
            "fallback to global mode"
        );
    }

    #[test]
    fn dense_and_reference_tables_agree() {
        // Pseudo-random route sets: the LinkMap-backed table and the
        // preserved HashMap implementation must agree on every feature
        // and on the full (link, count) table.
        let mut state = 0xA5A5A5A5DEADBEEFu64;
        let mut next = move |bound: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % bound
        };
        for _ in 0..50 {
            let n_routes = 1 + next(12) as usize;
            let mut routes = Vec::new();
            for _ in 0..n_routes {
                // Loop-free path over a small id space.
                let mut path: Vec<NodeId> = Vec::new();
                let len = 2 + next(6);
                for _ in 0..len {
                    let id = NodeId(next(30));
                    if !path.contains(&id) {
                        path.push(id);
                    }
                }
                if path.len() >= 2 {
                    routes.push(Route::new(path).unwrap());
                }
            }
            let dense = LinkStats::from_routes(&routes);
            let reference = RefLinkStats::from_routes(&routes);
            assert_eq!(dense.route_count(), reference.route_count());
            assert_eq!(dense.distinct_links(), reference.distinct_links());
            assert_eq!(dense.total_links(), reference.total_links());
            assert_eq!(dense.top_two(), reference.top_two());
            assert_eq!(dense.p_max(), reference.p_max());
            assert_eq!(dense.delta(), reference.delta());
            assert_eq!(dense.suspect_link(), reference.suspect_link());
            let mut a: Vec<(Link, u32)> = dense.counts().collect();
            let mut b: Vec<(Link, u32)> = reference.counts().collect();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn summary_round_trips_fields() {
        let routes = vec![r(&[0, 1, 2, 5]), r(&[0, 1, 3, 5])];
        let s = LinkStats::from_routes(&routes);
        let f = s.summary();
        assert_eq!(f.routes, 2);
        assert_eq!(f.distinct_links, 5);
        assert_eq!(f.total_links, 6);
        assert_eq!(f.suspect_link, Some((0, 1)));
    }
}
