//! Nonparametric hypothesis testing for the evaluation harness.
//!
//! The paper argues its figures visually ("both statistics are larger
//! under attack"); we attach a Mann–Whitney U test to each normal-vs-
//! attacked series so the separation claims carry p-values. The
//! rank-sum test is the right tool here: ten-run series, no normality
//! assumption, and the feature distributions are visibly skewed.

/// Result of a two-sided Mann–Whitney U test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Standard-normal z approximation (tie-corrected).
    pub z: f64,
    /// Two-sided p-value under the normal approximation.
    pub p_two_sided: f64,
    /// Common-language effect size: `P(a > b) + ½P(a = b)`.
    pub effect: f64,
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7 — far below anything a 10-sample test resolves).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let y = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - y * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// Two-sided Mann–Whitney U test comparing samples `a` and `b`.
///
/// Uses midranks for ties and the tie-corrected normal approximation;
/// returns `None` when either sample is empty or every value is
/// identical across both samples (no ordering information).
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MannWhitney> {
    let (na, nb) = (a.len(), b.len());
    if na == 0 || nb == 0 {
        return None;
    }
    // Pool and midrank.
    let mut pooled: Vec<(f64, usize)> = a
        .iter()
        .map(|&v| (v, 0usize))
        .chain(b.iter().map(|&v| (v, 1usize)))
        .collect();
    pooled.sort_by(|x, y| x.0.total_cmp(&y.0));

    let n = pooled.len();
    let mut rank_sum_a = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let count = (j - i + 1) as f64;
        // Midrank of the tie group (ranks are 1-based).
        let midrank = (i + 1 + j + 1) as f64 / 2.0;
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                rank_sum_a += midrank;
            }
        }
        tie_term += count * (count * count - 1.0);
        i = j + 1;
    }

    let naf = na as f64;
    let nbf = nb as f64;
    let u_a = rank_sum_a - naf * (naf + 1.0) / 2.0;
    let mean_u = naf * nbf / 2.0;
    let nf = n as f64;
    let var_u = naf * nbf / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var_u <= 0.0 {
        return None; // all values tied: no information
    }
    let z = (u_a - mean_u) / var_u.sqrt();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    Some(MannWhitney {
        u: u_a,
        z,
        p_two_sided: p.clamp(0.0, 1.0),
        effect: u_a / (naf * nbf),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
    }

    #[test]
    fn clearly_separated_samples_get_tiny_p() {
        let a = [0.9, 0.8, 0.85, 0.95, 0.88, 0.92, 0.87, 0.91];
        let b = [0.1, 0.2, 0.15, 0.05, 0.12, 0.18, 0.13, 0.09];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided < 0.001, "{r:?}");
        assert!((r.effect - 1.0).abs() < 1e-12, "a fully dominates b");
        assert!(r.z > 3.0);
    }

    #[test]
    fn identical_distributions_get_large_p() {
        let a = [0.1, 0.5, 0.3, 0.7, 0.2, 0.6];
        let b = [0.15, 0.55, 0.35, 0.65, 0.25, 0.45];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided > 0.5, "{r:?}");
        assert!((r.effect - 0.5).abs() < 0.2);
    }

    #[test]
    fn symmetry_in_arguments() {
        let a = [0.9, 0.8, 0.7];
        let b = [0.1, 0.2, 0.3];
        let ab = mann_whitney_u(&a, &b).unwrap();
        let ba = mann_whitney_u(&b, &a).unwrap();
        assert!((ab.p_two_sided - ba.p_two_sided).abs() < 1e-9);
        assert!((ab.effect + ba.effect - 1.0).abs() < 1e-9);
        assert!((ab.z + ba.z).abs() < 1e-9);
    }

    #[test]
    fn ties_are_handled_with_midranks() {
        let a = [0.5, 0.5, 0.5, 0.8];
        let b = [0.5, 0.5, 0.2, 0.1];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_two_sided > 0.05 && r.p_two_sided <= 1.0, "{r:?}");
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
        assert!(mann_whitney_u(&[0.5, 0.5], &[0.5, 0.5]).is_none());
    }
}
