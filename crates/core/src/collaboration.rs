//! Global coordinated detection (paper §III.B).
//!
//! "Each node will act as an agent of IDS to detect the attack locally
//! and independently; on the other hand, it will collaborate with other
//! nodes in the network, so as to identify and notify attack behaviors."
//!
//! A [`GlobalCoordinator`] ingests the per-destination [`AttackReport`]s
//! (each destination sees a *different* slice of the traffic, so their
//! suspect links differ in confidence and occasionally in identity) and
//! fuses them: per-link confidence mass accumulates across reports, and
//! per-node suspicion aggregates over the links touching the node — a
//! wormhole endpoint collects mass from every report regardless of which
//! tied link a particular destination happened to pick.

use crate::linkmap::LinkMap;
use crate::procedure::AttackReport;
use manet_sim::{Link, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A fused verdict about one link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkVerdict {
    /// The link.
    pub link: (NodeId, NodeId),
    /// Accumulated confidence mass (Σ (1 − λ) over reports naming it).
    pub confidence: f64,
    /// How many reports named it.
    pub reports: usize,
}

/// A fused verdict about one node.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeVerdict {
    /// The node.
    pub node: NodeId,
    /// Accumulated confidence mass over links touching it.
    pub confidence: f64,
    /// How many reports implicated it.
    pub reports: usize,
}

/// Fusion centre for attack reports from many local agents. Confidence
/// mass accumulates in the same compact [`LinkMap`] the tabulation hot
/// path uses; verdict extraction sorts, so the map's iteration order
/// never shows.
#[derive(Clone, Debug, Default)]
pub struct GlobalCoordinator {
    link_mass: LinkMap<(f64, usize)>,
    ingested: usize,
}

impl GlobalCoordinator {
    /// An empty coordinator.
    pub fn new() -> Self {
        GlobalCoordinator::default()
    }

    /// Ingest one local report. The report's weight is its detection
    /// confidence `1 − λ`.
    pub fn ingest(&mut self, report: &AttackReport) {
        let (a, b) = report.suspect_link;
        let weight = (1.0 - report.lambda).clamp(0.0, 1.0);
        let entry = self.link_mass.entry_or_default(Link::new(a, b));
        entry.0 += weight;
        entry.1 += 1;
        self.ingested += 1;
    }

    /// Total reports ingested.
    pub fn report_count(&self) -> usize {
        self.ingested
    }

    /// Per-link verdicts, highest confidence first.
    pub fn link_verdicts(&self) -> Vec<LinkVerdict> {
        let mut v: Vec<LinkVerdict> = self
            .link_mass
            .iter()
            .map(|(l, (confidence, reports))| LinkVerdict {
                link: l.endpoints(),
                confidence,
                reports,
            })
            .collect();
        v.sort_by(|x, y| {
            y.confidence
                .total_cmp(&x.confidence)
                .then_with(|| x.link.cmp(&y.link))
        });
        v
    }

    /// Per-node verdicts, highest confidence first. A node accumulates
    /// the mass of every reported link touching it, so the common
    /// endpoint of several differently-named suspect links (a wormhole
    /// endpoint seen from different destinations) rises to the top.
    pub fn node_verdicts(&self) -> Vec<NodeVerdict> {
        let mut per_node: HashMap<NodeId, (f64, usize)> = HashMap::new();
        for (link, (confidence, reports)) in self.link_mass.iter() {
            for n in [link.lo(), link.hi()] {
                let e = per_node.entry(n).or_insert((0.0, 0));
                e.0 += confidence;
                e.1 += reports;
            }
        }
        let mut v: Vec<NodeVerdict> = per_node
            .into_iter()
            .map(|(node, (confidence, reports))| NodeVerdict {
                node,
                confidence,
                reports,
            })
            .collect();
        v.sort_by(|x, y| {
            y.confidence
                .total_cmp(&x.confidence)
                .then_with(|| x.node.cmp(&y.node))
        });
        v
    }

    /// Nodes whose accumulated confidence passes `threshold` — the
    /// coordinator's isolation list.
    pub fn isolation_list(&self, threshold: f64) -> Vec<NodeId> {
        self.node_verdicts()
            .into_iter()
            .filter(|v| v.confidence >= threshold)
            .map(|v| v.node)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(a: u32, b: u32, lambda: f64) -> AttackReport {
        AttackReport {
            suspect_link: (NodeId(a), NodeId(b)),
            lambda,
            p_max: 0.3,
            delta: 0.5,
            probe_ack_ratio: 0.0,
            paths_tested: 3,
            isolate: vec![NodeId(a), NodeId(b)],
        }
    }

    #[test]
    fn single_report_yields_its_link() {
        let mut c = GlobalCoordinator::new();
        c.ingest(&report(1, 2, 0.1));
        let links = c.link_verdicts();
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].link, (NodeId(1), NodeId(2)));
        assert!((links[0].confidence - 0.9).abs() < 1e-12);
        assert_eq!(c.report_count(), 1);
    }

    #[test]
    fn repeated_reports_accumulate() {
        let mut c = GlobalCoordinator::new();
        c.ingest(&report(1, 2, 0.2));
        c.ingest(&report(2, 1, 0.4)); // same undirected link
        let links = c.link_verdicts();
        assert_eq!(links.len(), 1);
        assert!((links[0].confidence - 1.4).abs() < 1e-12);
        assert_eq!(links[0].reports, 2);
    }

    #[test]
    fn shared_endpoint_rises_in_node_verdicts() {
        // Three destinations name three different links, all touching
        // node 9 (the wormhole endpoint); the fourth names an unrelated
        // link with moderate confidence.
        let mut c = GlobalCoordinator::new();
        c.ingest(&report(9, 1, 0.1));
        c.ingest(&report(9, 2, 0.2));
        c.ingest(&report(3, 9, 0.15));
        c.ingest(&report(5, 6, 0.4));
        let nodes = c.node_verdicts();
        assert_eq!(nodes[0].node, NodeId(9), "{nodes:?}");
        assert!(nodes[0].confidence > 2.0);
        assert_eq!(nodes[0].reports, 3);
    }

    #[test]
    fn isolation_list_respects_threshold() {
        let mut c = GlobalCoordinator::new();
        c.ingest(&report(9, 1, 0.0));
        c.ingest(&report(9, 2, 0.0));
        c.ingest(&report(5, 6, 0.9));
        let isolate = c.isolation_list(1.5);
        assert_eq!(isolate, vec![NodeId(9)]);
        let everyone = c.isolation_list(0.05);
        assert!(everyone.contains(&NodeId(5)));
        assert!(c.isolation_list(10.0).is_empty());
    }

    #[test]
    fn verdict_ordering_is_deterministic_under_ties() {
        let mut c = GlobalCoordinator::new();
        c.ingest(&report(1, 2, 0.5));
        c.ingest(&report(3, 4, 0.5));
        let links = c.link_verdicts();
        assert_eq!(links[0].link, (NodeId(1), NodeId(2)));
        assert_eq!(links[1].link, (NodeId(3), NodeId(4)));
    }
}
