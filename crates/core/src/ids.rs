//! The IDS agent model (paper §III.B, Fig. 4).
//!
//! Each node runs a local agent: **data collection** (the SAM module
//! counting links over the routes of each multi-path discovery), **local
//! detection** (the trained profile + soft decision λ and the eq. (8)–(9)
//! profile update), and a **response module** that turns confirmed
//! detections into alerts and isolation notices for the rest of the
//! network. The agent is deliberately simulator-agnostic: feed it route
//! sets, get actions back.

use crate::detector::{SamAnalysis, SamConfig, SamDetector};
use crate::procedure::{
    AttackReport, DetectionOutcome, ProbeTransport, Procedure, ProcedureConfig,
};
use crate::profile::NormalProfile;
use manet_routing::Route;
use manet_sim::NodeId;
use serde::{Deserialize, Serialize};

/// Messages the response module exchanges with the rest of the IDS — the
/// "signalling messages between local detection and global coordinated
/// detection".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ResponseMsg {
    /// Broadcast alert: a wormhole was confirmed.
    AttackAlert {
        /// Endpoints of the attack link.
        suspects: (NodeId, NodeId),
        /// Confidence = `1 − λ`.
        confidence: f64,
    },
    /// Ask the suspects' neighbours to stop forwarding for them.
    IsolationRequest {
        /// Nodes to isolate.
        nodes: Vec<NodeId>,
    },
    /// Ask other agents to corroborate a suspicion that could not be
    /// confirmed locally.
    CollaborationRequest {
        /// Endpoints of the suspicious link.
        suspects: (NodeId, NodeId),
        /// Local soft decision.
        lambda: f64,
    },
}

/// What the agent decided to do after one observation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum AgentAction {
    /// Nothing notable; routing proceeds with the selected routes.
    Proceed {
        /// Routes handed back to the routing layer.
        routes: Vec<Route>,
    },
    /// Suspicion raised but not confirmed: collaborate, route around.
    Collaborate {
        /// Message for the neighbours.
        msg: ResponseMsg,
        /// Safe routes to use meanwhile.
        routes: Vec<Route>,
    },
    /// Attack confirmed: alert + isolation.
    Respond {
        /// The alert for the security authority / neighbours.
        alert: ResponseMsg,
        /// The isolation request.
        isolation: ResponseMsg,
        /// The detailed report.
        report: AttackReport,
    },
}

/// Operating phase of the agent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AgentPhase {
    /// Accumulating normal-condition training data.
    Training,
    /// Profile frozen into service; detection active.
    Operational,
}

/// Configuration of the agent.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Detector settings.
    pub sam: SamConfig,
    /// Procedure settings.
    pub procedure: ProcedureConfig,
    /// Forgetting factor β of eq. (8)–(9).
    pub beta: f64,
    /// Discoveries required before the agent leaves training.
    pub training_target: usize,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            sam: SamConfig::default(),
            procedure: ProcedureConfig::default(),
            beta: 0.1,
            training_target: 10,
        }
    }
}

/// One node's IDS agent with SAM as its local-detection data source.
#[derive(Debug)]
pub struct IdsAgent {
    node: NodeId,
    cfg: AgentConfig,
    phase: AgentPhase,
    training_sets: Vec<Vec<Route>>,
    profile: NormalProfile,
    /// λ history, most recent last (diagnostics / tests).
    pub lambda_history: Vec<f64>,
}

impl IdsAgent {
    /// A fresh (untrained) agent at `node`.
    pub fn new(node: NodeId, cfg: AgentConfig) -> Self {
        IdsAgent {
            node,
            cfg,
            phase: AgentPhase::Training,
            training_sets: Vec::new(),
            profile: NormalProfile::train(&[], cfg.sam.pmf_bins),
            lambda_history: Vec::new(),
        }
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current phase.
    pub fn phase(&self) -> AgentPhase {
        self.phase
    }

    /// The current profile.
    pub fn profile(&self) -> &NormalProfile {
        &self.profile
    }

    /// Feed one training observation (a route set known/assumed normal).
    /// When the training target is reached the profile is built and the
    /// agent becomes operational.
    pub fn observe_training(&mut self, routes: Vec<Route>) {
        assert_eq!(
            self.phase,
            AgentPhase::Training,
            "training observations only accepted during training"
        );
        self.training_sets.push(routes);
        if self.training_sets.len() >= self.cfg.training_target {
            self.profile = NormalProfile::train(&self.training_sets, self.cfg.sam.pmf_bins);
            self.phase = AgentPhase::Operational;
        }
    }

    /// Force the transition to operational with whatever training exists.
    pub fn finish_training(&mut self) {
        self.profile = NormalProfile::train(&self.training_sets, self.cfg.sam.pmf_bins);
        self.phase = AgentPhase::Operational;
    }

    /// Run SAM + the detection procedure over one operational observation
    /// and update the profile per eq. (8)–(9).
    pub fn observe<T: ProbeTransport>(
        &mut self,
        routes: &[Route],
        transport: &mut T,
    ) -> AgentAction {
        assert_eq!(
            self.phase,
            AgentPhase::Operational,
            "finish training before operational observations"
        );
        let procedure = Procedure::new(SamDetector::new(self.cfg.sam), self.cfg.procedure);
        let outcome = procedure.execute(routes, &self.profile, transport);

        let (lambda, analysis): (f64, Option<&SamAnalysis>) = match &outcome {
            DetectionOutcome::Normal { .. } => (1.0, None),
            DetectionOutcome::SuspiciousUnconfirmed { analysis, .. }
            | DetectionOutcome::Confirmed { analysis, .. } => (analysis.lambda, Some(analysis)),
        };
        self.lambda_history.push(lambda);

        // Eq. (8)–(9): adapt the profile, weighted by λβ.
        let features = match analysis {
            Some(a) => a.features,
            None => crate::stats::LinkStats::from_routes(routes).summary(),
        };
        self.profile
            .adapt(features.p_max, features.delta, lambda, self.cfg.beta);
        self.profile
            .adapt_hops(features.mean_hops, lambda, self.cfg.beta);

        match outcome {
            DetectionOutcome::Normal { selected_routes } => AgentAction::Proceed {
                routes: selected_routes,
            },
            DetectionOutcome::SuspiciousUnconfirmed {
                analysis,
                selected_routes,
            } => {
                let (a, b) = analysis
                    .suspect_link
                    .map(|l| l.endpoints())
                    .unwrap_or((self.node, self.node));
                AgentAction::Collaborate {
                    msg: ResponseMsg::CollaborationRequest {
                        suspects: (a, b),
                        lambda: analysis.lambda,
                    },
                    routes: selected_routes,
                }
            }
            DetectionOutcome::Confirmed { report, .. } => AgentAction::Respond {
                alert: ResponseMsg::AttackAlert {
                    suspects: report.suspect_link,
                    confidence: 1.0 - report.lambda,
                },
                isolation: ResponseMsg::IsolationRequest {
                    nodes: report.isolate.clone(),
                },
                report,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::procedure::all_ack_transport;

    fn r(ids: &[u32]) -> Route {
        Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
    }

    fn normal_set(variant: u32) -> Vec<Route> {
        // Three spread routes; `variant` perturbs one intermediate.
        let v = 10 + (variant % 3);
        vec![r(&[0, 1, 2, 9]), r(&[0, 3, v, 9]), r(&[0, 5, 6, 9])]
    }

    fn attacked_set() -> Vec<Route> {
        vec![
            r(&[0, 7, 8, 9]),
            r(&[0, 1, 7, 8, 9]),
            r(&[0, 3, 7, 8, 9]),
            r(&[0, 5, 7, 8, 9]),
        ]
    }

    fn trained_agent() -> IdsAgent {
        let cfg = AgentConfig {
            training_target: 5,
            ..AgentConfig::default()
        };
        let mut agent = IdsAgent::new(NodeId(9), cfg);
        for i in 0..5 {
            agent.observe_training(normal_set(i));
        }
        assert_eq!(agent.phase(), AgentPhase::Operational);
        agent
    }

    #[test]
    fn agent_trains_then_operates() {
        let agent = trained_agent();
        assert!(agent.profile().is_trained());
    }

    #[test]
    fn normal_observation_proceeds_and_keeps_lambda_high() {
        let mut agent = trained_agent();
        let mut t = all_ack_transport();
        match agent.observe(&normal_set(7), &mut t) {
            AgentAction::Proceed { routes } => assert!(!routes.is_empty()),
            other => panic!("expected Proceed, got {other:?}"),
        }
        assert!(agent.lambda_history.last().copied().unwrap() > 0.5);
    }

    #[test]
    fn attack_observation_responds_with_alert_and_isolation() {
        let mut agent = trained_agent();
        let mut t = all_ack_transport();
        match agent.observe(&attacked_set(), &mut t) {
            AgentAction::Respond {
                alert,
                isolation,
                report,
            } => {
                assert_eq!(report.suspect_link, (NodeId(7), NodeId(8)));
                match alert {
                    ResponseMsg::AttackAlert { confidence, .. } => assert!(confidence > 0.8),
                    other => panic!("bad alert {other:?}"),
                }
                match isolation {
                    ResponseMsg::IsolationRequest { nodes } => {
                        assert_eq!(nodes, vec![NodeId(7), NodeId(8)])
                    }
                    other => panic!("bad isolation {other:?}"),
                }
            }
            other => panic!("expected Respond, got {other:?}"),
        }
    }

    #[test]
    fn attack_observations_do_not_poison_the_profile() {
        let mut agent = trained_agent();
        let before = agent.profile().p_max.mean;
        let mut t = all_ack_transport();
        for _ in 0..20 {
            agent.observe(&attacked_set(), &mut t);
        }
        let after = agent.profile().p_max.mean;
        // λ ≈ 0 during attacks ⇒ eq. (8) barely moves the mean.
        assert!(
            (after - before).abs() < 0.05,
            "profile drifted from {before} to {after} under attack"
        );
        // And the attack is still detected afterwards.
        match agent.observe(&attacked_set(), &mut t) {
            AgentAction::Respond { .. } => {}
            other => panic!("detection lost after attack stream: {other:?}"),
        }
    }

    #[test]
    fn profile_tracks_slow_normal_drift() {
        let mut agent = trained_agent();
        let before = agent.profile().p_max.mean;
        let mut t = all_ack_transport();
        for i in 0..30 {
            agent.observe(&normal_set(i), &mut t);
        }
        // Normal observations keep λ high, so the profile keeps adapting
        // (means may move a little; what matters is it doesn't freeze NaN
        // or run away).
        let after = agent.profile().p_max.mean;
        assert!(after.is_finite());
        assert!((after - before).abs() < 0.3);
    }

    #[test]
    #[should_panic(expected = "finish training")]
    fn operational_observe_requires_training_done() {
        let mut agent = IdsAgent::new(NodeId(1), AgentConfig::default());
        let mut t = all_ack_transport();
        let _ = agent.observe(&attacked_set(), &mut t);
    }

    #[test]
    fn finish_training_early_works() {
        let mut agent = IdsAgent::new(NodeId(1), AgentConfig::default());
        agent.observe_training(normal_set(0));
        agent.finish_training();
        assert_eq!(agent.phase(), AgentPhase::Operational);
        assert!(agent.profile().is_trained());
    }

    #[test]
    fn response_messages_serialize() {
        let msg = ResponseMsg::AttackAlert {
            suspects: (NodeId(1), NodeId(2)),
            confidence: 0.93,
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: ResponseMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(msg, back);
    }
}
