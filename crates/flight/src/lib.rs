//! # sam-flight — the causal flight recorder
//!
//! A *flight recording* is everything one simulated detection run leaves
//! behind for post-mortem analysis: the engine's causal packet trace
//! (every delivery and timer, each linked to the event that caused it),
//! the `sam-telemetry` spans that timed the run, the final metrics
//! snapshot, and — when the SAM explainer ran — the verdict
//! [`Explanation`](https://en.wikipedia.org/wiki/Explainable_artificial_intelligence)
//! as an opaque JSON document.
//!
//! The pieces:
//!
//! * [`record`] — the [`FlightRecording`] container and its JSONL
//!   serialization (one kind-discriminated object per line, mixing
//!   `"packet"` lines with the telemetry stream's `"span"`/`"snapshot"`
//!   lines, so one file tells the whole story).
//! * [`lineage`] — offline route provenance: given a recorded trace and a
//!   discovered route, reconstruct the exact chain of deliveries (RREQ
//!   rebroadcasts, tunnel crossings) that produced it.
//! * [`summary`] — one-screen [`FlightSummary`] statistics plus a
//!   recording-vs-recording diff.
//! * [`chrome`] — export a recording as Chrome trace-event JSON viewable
//!   in Perfetto / `chrome://tracing`.
//!
//! The `sam-trace` CLI in `sam-experiments` is a thin shell over these
//! modules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod lineage;
pub mod record;
pub mod summary;

pub use chrome::chrome_trace;
pub use lineage::{reconstruct_route, RouteLineage};
pub use record::{FlightMeta, FlightRecording};
pub use summary::{diff_summaries, FlightSummary};
