//! The on-disk flight recording.
//!
//! ## JSONL schema
//!
//! One JSON object per line, discriminated by its `kind` field:
//!
//! * `"flight"` — the [`FlightMeta`] header: scenario/protocol/seed,
//!   topology size, endpoints, attacker pairs, and the trace's
//!   dropped-entry count. Always the first line.
//! * `"packet"` — one causal trace entry, wrapped as `{"kind":
//!   "packet", "entry": TraceEntry}` (see `manet_sim::trace`).
//! * `"span"` / `"event"` — a `sam-telemetry` [`EventRecord`], verbatim.
//! * `"snapshot"` — the final [`RegistrySnapshot`], verbatim.
//! * `"explanation"` — the SAM verdict explanation, an opaque JSON
//!   object produced by the `sam` core (kept opaque here so this crate
//!   needs no detector dependency).
//!
//! Unknown kinds are skipped on read, so the format can grow.

use manet_sim::{Trace, TraceEntry};
use sam_telemetry::{EventRecord, RegistrySnapshot};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// The recording header: everything needed to interpret (or re-run) the
/// scenario the trace came from.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightMeta {
    /// Line discriminator, always `"flight"`.
    pub kind: String,
    /// Scenario name (e.g. `two_cluster`).
    pub scenario: String,
    /// Routing protocol the run used.
    pub protocol: String,
    /// The run seed.
    pub seed: u64,
    /// Number of nodes in the topology.
    pub nodes: u64,
    /// Discovery source node id.
    pub src: u32,
    /// Discovery destination node id.
    pub dst: u32,
    /// Active attacker pairs, as `(a, b)` node ids.
    pub attacker_pairs: Vec<(u32, u32)>,
    /// Trace entries lost to the recorder's capacity bound.
    pub dropped: u64,
}

impl FlightMeta {
    /// A header with the `kind` discriminator filled in and no attackers.
    pub fn new(scenario: &str, protocol: &str, seed: u64) -> Self {
        FlightMeta {
            kind: "flight".to_string(),
            scenario: scenario.to_string(),
            protocol: protocol.to_string(),
            seed,
            nodes: 0,
            src: 0,
            dst: 0,
            attacker_pairs: Vec::new(),
            dropped: 0,
        }
    }
}

/// Wire wrapper for one trace entry line.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct PacketLine {
    kind: String,
    entry: TraceEntry,
}

/// One run's complete observability record.
#[derive(Clone, Debug)]
pub struct FlightRecording {
    /// The scenario header.
    pub meta: FlightMeta,
    /// Causal trace entries, in dispatch order.
    pub entries: Vec<TraceEntry>,
    /// Telemetry spans/events emitted during the run.
    pub spans: Vec<EventRecord>,
    /// Final metrics snapshot, when telemetry was installed.
    pub snapshot: Option<RegistrySnapshot>,
    /// The SAM verdict explanation, when the explainer ran. Must be a
    /// JSON object carrying `"kind": "explanation"`.
    pub explanation: Option<Value>,
}

impl FlightRecording {
    /// An empty recording under `meta`.
    pub fn new(meta: FlightMeta) -> Self {
        FlightRecording {
            meta,
            entries: Vec::new(),
            spans: Vec::new(),
            snapshot: None,
            explanation: None,
        }
    }

    /// Rebuild a queryable [`Trace`] over the recorded entries.
    pub fn trace(&self) -> Trace {
        Trace::from_entries(self.entries.clone(), self.meta.dropped)
    }

    /// Write the recording in the JSONL schema (header first).
    pub fn write_jsonl<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{}", json_line(&self.meta)?)?;
        for e in &self.entries {
            let line = PacketLine {
                kind: "packet".to_string(),
                entry: *e,
            };
            writeln!(w, "{}", json_line(&line)?)?;
        }
        for s in &self.spans {
            writeln!(w, "{}", json_line(s)?)?;
        }
        if let Some(snap) = &self.snapshot {
            writeln!(w, "{}", json_line(snap)?)?;
        }
        if let Some(ex) = &self.explanation {
            writeln!(w, "{}", json_line(ex)?)?;
        }
        Ok(())
    }

    /// Parse a recording from a JSONL reader. Lines with unknown kinds
    /// are skipped; a missing `"flight"` header is an error.
    pub fn read_jsonl<R: BufRead>(r: R) -> io::Result<Self> {
        let mut meta: Option<FlightMeta> = None;
        let mut entries = Vec::new();
        let mut spans = Vec::new();
        let mut snapshot = None;
        let mut explanation = None;
        for (n, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let value: Value = serde_json::from_str(&line)
                .map_err(|e| bad_data(format!("line {}: {e}", n + 1)))?;
            let kind = value
                .field("kind")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            match kind.as_str() {
                "flight" => {
                    meta = Some(parse_line(&line, n)?);
                }
                "packet" => {
                    let p: PacketLine = parse_line(&line, n)?;
                    entries.push(p.entry);
                }
                "span" | "event" => {
                    spans.push(parse_line(&line, n)?);
                }
                "snapshot" => {
                    snapshot = Some(parse_line(&line, n)?);
                }
                "explanation" => {
                    explanation = Some(value);
                }
                _ => {} // forward compatibility: ignore unknown lines
            }
        }
        let meta = meta.ok_or_else(|| bad_data("no \"flight\" header line".to_string()))?;
        Ok(FlightRecording {
            meta,
            entries,
            spans,
            snapshot,
            explanation,
        })
    }

    /// Write the recording to `path`.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let f = File::create(path)?;
        self.write_jsonl(BufWriter::new(f))
    }

    /// Load a recording from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        let f = File::open(path)?;
        Self::read_jsonl(BufReader::new(f))
    }
}

fn json_line<T: Serialize>(v: &T) -> io::Result<String> {
    serde_json::to_string(v).map_err(|e| bad_data(e.to_string()))
}

fn parse_line<T: Deserialize>(line: &str, n: usize) -> io::Result<T> {
    serde_json::from_str(line).map_err(|e| bad_data(format!("line {}: {e}", n + 1)))
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{NodeId, SimTime, TraceChannel, TraceKind};

    fn sample() -> FlightRecording {
        let mut meta = FlightMeta::new("line", "mr", 7);
        meta.nodes = 4;
        meta.src = 0;
        meta.dst = 3;
        meta.attacker_pairs = vec![(1, 2)];
        meta.dropped = 5;
        let mut rec = FlightRecording::new(meta);
        rec.entries = vec![
            TraceEntry {
                id: 0,
                cause: None,
                at: SimTime(1),
                node: NodeId(1),
                kind: TraceKind::Deliver {
                    from: NodeId(0),
                    channel: TraceChannel::Broadcast,
                },
            },
            TraceEntry {
                id: 1,
                cause: Some(0),
                at: SimTime(2),
                node: NodeId(2),
                kind: TraceKind::Deliver {
                    from: NodeId(1),
                    channel: TraceChannel::Tunnel,
                },
            },
        ];
        rec.spans = vec![EventRecord {
            kind: "span".to_string(),
            id: 1,
            parent: 0,
            name: "discovery".to_string(),
            start_us: 10,
            dur_us: 250,
            trace: None,
            fields: vec![("routes".to_string(), "3".to_string())],
        }];
        rec
    }

    #[test]
    fn recording_round_trips_through_jsonl() {
        let rec = sample();
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.lines().next().unwrap().contains("\"flight\""));
        let back = FlightRecording::read_jsonl(&buf[..]).unwrap();
        assert_eq!(back.meta, rec.meta);
        assert_eq!(back.entries, rec.entries);
        assert_eq!(back.spans, rec.spans);
        assert!(back.snapshot.is_none());
        assert!(back.explanation.is_none());
        let trace = back.trace();
        assert_eq!(trace.dropped(), 5);
        assert_eq!(trace.lineage_depth(1), 2);
    }

    #[test]
    fn explanation_line_survives_as_opaque_json() {
        let mut rec = sample();
        rec.explanation =
            Some(serde_json::from_str(r#"{"kind":"explanation","p_max":0.8}"#).unwrap());
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let back = FlightRecording::read_jsonl(&buf[..]).unwrap();
        let ex = back.explanation.expect("explanation preserved");
        assert_eq!(
            ex.field("kind").and_then(Value::as_str),
            Some("explanation")
        );
    }

    #[test]
    fn unknown_kinds_are_skipped_and_missing_header_errors() {
        let rec = sample();
        let mut buf = Vec::new();
        rec.write_jsonl(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("{\"kind\":\"future-thing\",\"x\":1}\n");
        let back = FlightRecording::read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.entries.len(), 2);

        let headless = "{\"kind\":\"future-thing\"}\n";
        assert!(FlightRecording::read_jsonl(headless.as_bytes()).is_err());
    }
}
