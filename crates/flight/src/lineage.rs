//! Offline route provenance.
//!
//! A discovered route `[n0, n1, …, nk]` was built by a chain of RREQ
//! deliveries: `n0`'s flood reached `n1`, whose rebroadcast (or tunnel
//! relay) reached `n2`, and so on until the copy carrying exactly this
//! path arrived at the destination. In the causal trace each of those
//! deliveries is an entry whose `cause` is the *reception that triggered
//! it* — so the evidence for hop `i` must be a `Deliver` to `n(i+1)` from
//! `n(i)` whose cause is the hop-`(i-1)` evidence entry. A backtracking
//! search over the candidates at each hop recovers a cause-consistent
//! chain even when a node received the same flood several times.

use crate::record::FlightRecording;
use manet_sim::{NodeId, Trace, TraceChannel, TraceEntry, TraceKind};

/// The reconstructed provenance of one route.
#[derive(Clone, Debug)]
pub struct RouteLineage {
    /// The route's node ids, source first.
    pub nodes: Vec<NodeId>,
    /// One evidence entry per hop (`nodes.len() - 1` of them): the
    /// delivery to `nodes[i+1]` from `nodes[i]` on the causal chain.
    pub hops: Vec<TraceEntry>,
    /// How many of those hops crossed a wormhole tunnel.
    pub tunnel_hops: usize,
    /// Full causal depth of the final hop's entry (includes the root
    /// timer that kicked off the discovery).
    pub depth: usize,
}

impl RouteLineage {
    /// Whether any hop of this route rode the attackers' tunnel.
    pub fn crossed_tunnel(&self) -> bool {
        self.tunnel_hops > 0
    }
}

/// Deliveries to `to` from `from`, candidates for one hop.
fn candidates(trace: &Trace, from: NodeId, to: NodeId) -> Vec<&TraceEntry> {
    trace
        .entries()
        .iter()
        .filter(|e| {
            e.node == to && matches!(e.kind, TraceKind::Deliver { from: f, .. } if f == from)
        })
        .collect()
}

/// Depth-first search for a cause-consistent chain covering hops
/// `hop..` given the entry chosen for the previous hop.
fn extend(
    trace: &Trace,
    nodes: &[NodeId],
    hop: usize,
    prev: &TraceEntry,
    chain: &mut Vec<TraceEntry>,
) -> bool {
    if hop + 1 >= nodes.len() {
        return true;
    }
    for cand in candidates(trace, nodes[hop], nodes[hop + 1]) {
        if cand.cause == Some(prev.id) {
            chain.push(*cand);
            if extend(trace, nodes, hop + 1, cand, chain) {
                return true;
            }
            chain.pop();
        }
    }
    false
}

/// Reconstruct the causal delivery chain that produced `route` (a node
/// sequence, source first) from `trace`. Returns `None` when no
/// cause-consistent chain exists — e.g. the trace overflowed and lost
/// the middle of the flood.
pub fn reconstruct_route(trace: &Trace, route: &[NodeId]) -> Option<RouteLineage> {
    if route.len() < 2 {
        return None;
    }
    // The first hop's delivery descends from harness scheduling (the
    // START_DISCOVERY timer), so it carries no in-chain constraint; try
    // every candidate as the anchor.
    for first in candidates(trace, route[0], route[1]) {
        let mut chain = vec![*first];
        if extend(trace, route, 1, first, &mut chain) {
            let tunnel_hops = chain
                .iter()
                .filter(|e| e.channel() == Some(TraceChannel::Tunnel))
                .count();
            let depth = trace.lineage_depth(chain.last().expect("non-empty").id);
            return Some(RouteLineage {
                nodes: route.to_vec(),
                hops: chain,
                tunnel_hops,
                depth,
            });
        }
    }
    None
}

/// Reconstruct every route of `routes` against the recording's trace,
/// pairing each with its lineage when one exists.
pub fn reconstruct_all(
    recording: &FlightRecording,
    routes: &[Vec<NodeId>],
) -> Vec<Option<RouteLineage>> {
    let trace = recording.trace();
    routes
        .iter()
        .map(|r| reconstruct_route(&trace, r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim::{SimTime, Trace};

    fn deliver(id: u64, cause: Option<u64>, to: u32, from: u32, ch: TraceChannel) -> TraceEntry {
        TraceEntry {
            id,
            cause,
            at: SimTime(id),
            node: NodeId(to),
            kind: TraceKind::Deliver {
                from: NodeId(from),
                channel: ch,
            },
        }
    }

    fn ids(route: &[u32]) -> Vec<NodeId> {
        route.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn reconstructs_a_simple_flood_chain() {
        let mut t = Trace::with_capacity(16);
        t.record(deliver(0, None, 1, 0, TraceChannel::Broadcast));
        t.record(deliver(1, Some(0), 2, 1, TraceChannel::Tunnel));
        t.record(deliver(2, Some(1), 3, 2, TraceChannel::Broadcast));
        let lin = reconstruct_route(&t, &ids(&[0, 1, 2, 3])).expect("chain exists");
        assert_eq!(lin.hops.iter().map(|e| e.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert_eq!(lin.tunnel_hops, 1);
        assert!(lin.crossed_tunnel());
        assert_eq!(lin.depth, 3);
    }

    #[test]
    fn backtracks_over_duplicate_receptions() {
        // Node 2 hears the flood twice (ids 1 and 3); only the second
        // copy's rebroadcast reached node 3, so the chain must pick it.
        let mut t = Trace::with_capacity(16);
        t.record(deliver(0, None, 1, 0, TraceChannel::Broadcast));
        t.record(deliver(1, Some(0), 2, 1, TraceChannel::Broadcast));
        t.record(deliver(3, Some(0), 2, 1, TraceChannel::Broadcast));
        t.record(deliver(4, Some(3), 3, 2, TraceChannel::Broadcast));
        let lin = reconstruct_route(&t, &ids(&[0, 1, 2, 3])).expect("chain exists");
        assert_eq!(lin.hops.iter().map(|e| e.id).collect::<Vec<_>>(), [0, 3, 4]);
        assert_eq!(lin.tunnel_hops, 0);
    }

    #[test]
    fn missing_link_yields_none() {
        let mut t = Trace::with_capacity(16);
        t.record(deliver(0, None, 1, 0, TraceChannel::Broadcast));
        // No delivery 1 → 2 at all.
        assert!(reconstruct_route(&t, &ids(&[0, 1, 2])).is_none());
        assert!(reconstruct_route(&t, &ids(&[0])).is_none());
    }

    #[test]
    fn cause_inconsistent_candidates_are_rejected() {
        // A 1 → 2 delivery exists but descends from an unrelated event,
        // so it is not evidence for this route.
        let mut t = Trace::with_capacity(16);
        t.record(deliver(0, None, 1, 0, TraceChannel::Broadcast));
        t.record(deliver(9, None, 5, 4, TraceChannel::Broadcast));
        t.record(deliver(10, Some(9), 2, 1, TraceChannel::Broadcast));
        assert!(reconstruct_route(&t, &ids(&[0, 1, 2])).is_none());
    }
}
