//! One-screen statistics over a recording, and recording-vs-recording
//! diffs (e.g. "normal run vs wormhole run of the same scenario").

use crate::record::FlightRecording;
use manet_sim::TraceChannel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate statistics of one flight recording.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightSummary {
    /// Line discriminator, `"flight_summary"`.
    pub kind: String,
    /// Scenario name from the header.
    pub scenario: String,
    /// Protocol from the header.
    pub protocol: String,
    /// Run seed from the header.
    pub seed: u64,
    /// Recorded trace entries.
    pub entries: u64,
    /// Entries lost to the capacity bound.
    pub dropped: u64,
    /// Causal roots (harness timers/injections).
    pub roots: u64,
    /// Timer firings recorded.
    pub timers: u64,
    /// Fault-channel entries (injected directives plus their drops and
    /// duplicates); 0 on fault-free runs.
    pub faults: u64,
    /// Broadcast deliveries recorded.
    pub broadcast: u64,
    /// Unicast deliveries recorded.
    pub unicast: u64,
    /// Tunnel deliveries recorded (wormhole forensics).
    pub tunnel: u64,
    /// Longest causal chain over all entries.
    pub max_lineage_depth: u64,
    /// Telemetry spans/events in the recording.
    pub spans: u64,
    /// Whether a verdict explanation is attached.
    pub has_explanation: bool,
}

impl FlightSummary {
    /// Summarize `recording`.
    pub fn from_recording(recording: &FlightRecording) -> Self {
        let trace = recording.trace();
        let channel_count = |c: TraceChannel| -> u64 {
            trace
                .entries()
                .iter()
                .filter(|e| e.channel() == Some(c))
                .count() as u64
        };
        FlightSummary {
            kind: "flight_summary".to_string(),
            scenario: recording.meta.scenario.clone(),
            protocol: recording.meta.protocol.clone(),
            seed: recording.meta.seed,
            entries: trace.entries().len() as u64,
            dropped: recording.meta.dropped,
            roots: trace.roots().count() as u64,
            timers: trace
                .entries()
                .iter()
                .filter(|e| matches!(e.kind, manet_sim::TraceKind::Timer { .. }))
                .count() as u64,
            faults: trace.entries().iter().filter(|e| e.is_fault()).count() as u64,
            broadcast: channel_count(TraceChannel::Broadcast),
            unicast: channel_count(TraceChannel::Unicast),
            tunnel: channel_count(TraceChannel::Tunnel),
            max_lineage_depth: trace.max_lineage_depth() as u64,
            spans: recording.spans.len() as u64,
            has_explanation: recording.explanation.is_some(),
        }
    }

    /// The numeric fields as `(name, value)` rows, in display order.
    fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("entries", self.entries),
            ("dropped", self.dropped),
            ("roots", self.roots),
            ("timers", self.timers),
            ("faults", self.faults),
            ("broadcast", self.broadcast),
            ("unicast", self.unicast),
            ("tunnel", self.tunnel),
            ("max_lineage_depth", self.max_lineage_depth),
            ("spans", self.spans),
        ]
    }
}

impl fmt::Display for FlightSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "flight: {} · {} · seed {}",
            self.scenario, self.protocol, self.seed
        )?;
        for (name, value) in self.rows() {
            writeln!(f, "  {name:<18} {value}")?;
        }
        writeln!(
            f,
            "  {:<18} {}",
            "explanation",
            if self.has_explanation { "yes" } else { "no" }
        )
    }
}

/// Render a field-by-field diff of two summaries (`b − a` deltas). The
/// interesting signal under a wormhole is the `tunnel` and
/// `max_lineage_depth` rows lighting up.
pub fn diff_summaries(a: &FlightSummary, b: &FlightSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>12} {:>12} {:>8}\n",
        "field", "a", "b", "delta"
    ));
    for ((name, va), (_, vb)) in a.rows().into_iter().zip(b.rows()) {
        let delta = vb as i64 - va as i64;
        out.push_str(&format!("{name:<18} {va:>12} {vb:>12} {delta:>+8}\n"));
    }
    if a.has_explanation != b.has_explanation {
        out.push_str(&format!(
            "{:<18} {:>12} {:>12}\n",
            "explanation", a.has_explanation, b.has_explanation
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FlightMeta;
    use manet_sim::{NodeId, SimTime, TraceEntry, TraceKind};

    fn recording(tunnel_entries: u64) -> FlightRecording {
        let mut rec = FlightRecording::new(FlightMeta::new("two_cluster", "mr", 3));
        rec.meta.dropped = 2;
        for i in 0..tunnel_entries {
            rec.entries.push(TraceEntry {
                id: i,
                cause: i.checked_sub(1),
                at: SimTime(i),
                node: NodeId(1),
                kind: TraceKind::Deliver {
                    from: NodeId(0),
                    channel: manet_sim::TraceChannel::Tunnel,
                },
            });
        }
        rec.entries.push(TraceEntry {
            id: 100,
            cause: None,
            at: SimTime(0),
            node: NodeId(0),
            kind: TraceKind::Timer { key: 1 },
        });
        rec
    }

    #[test]
    fn summary_counts_channels_and_depth() {
        let s = FlightSummary::from_recording(&recording(3));
        assert_eq!(s.entries, 4);
        assert_eq!(s.tunnel, 3);
        assert_eq!(s.timers, 1);
        assert_eq!(s.faults, 0);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.max_lineage_depth, 3);
        assert_eq!(s.roots, 2, "first delivery and the timer");
        assert!(!s.has_explanation);
        let rendered = s.to_string();
        assert!(rendered.contains("two_cluster"));
        assert!(rendered.contains("max_lineage_depth"));
    }

    #[test]
    fn fault_entries_count_as_faults_not_timers() {
        let mut rec = recording(1);
        rec.entries.push(TraceEntry {
            id: 101,
            cause: None,
            at: SimTime(5),
            node: NodeId(2),
            kind: TraceKind::Fault {
                kind: manet_sim::FaultKind::NodeDown,
            },
        });
        let s = FlightSummary::from_recording(&rec);
        assert_eq!(s.faults, 1);
        assert_eq!(s.timers, 1, "fault entries must not inflate timers");
        assert!(s.to_string().contains("faults"));
    }

    #[test]
    fn diff_shows_tunnel_delta() {
        let a = FlightSummary::from_recording(&recording(1));
        let b = FlightSummary::from_recording(&recording(4));
        let d = diff_summaries(&a, &b);
        assert!(d.contains("tunnel"), "{d}");
        assert!(d.contains("+3"), "{d}");
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = FlightSummary::from_recording(&recording(2));
        let line = serde_json::to_string(&s).unwrap();
        let back: FlightSummary = serde_json::from_str(&line).unwrap();
        assert_eq!(back, s);
    }
}
