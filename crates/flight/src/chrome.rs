//! Export a flight recording as Chrome trace-event JSON.
//!
//! Two synthetic "processes" appear in the viewer:
//!
//! * **pid 1 — telemetry**: every span/event from the recording's
//!   `sam-telemetry` stream, as complete/instant events on track 1
//!   (real wall-clock microseconds).
//! * **pid 2 — simulation**: every trace entry as an instant event whose
//!   timestamp is the *simulated* microsecond and whose track (`tid`) is
//!   the receiving node id — so each node gets a lane and the flood
//!   wavefront reads left to right. `args` carries the lineage id, the
//!   causal parent, and the sender, so clicking a tunnel crossing shows
//!   exactly which reception spawned it.

use crate::record::FlightRecording;
use manet_sim::{FaultKind, TraceChannel, TraceEntry, TraceKind};
use sam_telemetry::chrome::{event_to_chrome, obj, process_name, trace_document};
use serde_json::Value;

/// Instant name for one entry: the delivery channel or `timer`.
fn entry_name(e: &TraceEntry) -> &'static str {
    match e.kind {
        TraceKind::Deliver { channel, .. } => match channel {
            TraceChannel::Broadcast => "deliver.broadcast",
            TraceChannel::Unicast => "deliver.unicast",
            TraceChannel::Tunnel => "deliver.tunnel",
        },
        TraceKind::Timer { .. } => "timer",
        TraceKind::Fault { kind } => match kind {
            FaultKind::BurstStart { .. } => "fault.burst_start",
            FaultKind::BurstEnd { .. } => "fault.burst_end",
            FaultKind::NodeDown => "fault.node_down",
            FaultKind::NodeUp => "fault.node_up",
            FaultKind::Dropped { .. } => "fault.dropped",
            FaultKind::Duplicated { .. } => "fault.duplicated",
        },
    }
}

/// Convert one trace entry into an instant event on the simulation
/// process, one track per receiving node.
fn entry_to_chrome(e: &TraceEntry) -> Value {
    let mut args = vec![("id", Value::UInt(e.id))];
    match e.cause {
        Some(c) => args.push(("cause", Value::UInt(c))),
        None => args.push(("cause", Value::Null)),
    }
    if let TraceKind::Deliver { from, .. } = e.kind {
        args.push(("from", Value::UInt(u64::from(from.0))));
    }
    if let TraceKind::Timer { key } = e.kind {
        args.push(("key", Value::UInt(key)));
    }
    if let TraceKind::Fault {
        kind: FaultKind::Dropped { from } | FaultKind::Duplicated { from },
    } = e.kind
    {
        args.push(("from", Value::UInt(u64::from(from.0))));
    }
    obj(vec![
        ("name", Value::Str(entry_name(e).to_string())),
        ("cat", Value::Str("sim".to_string())),
        ("ph", Value::Str("i".to_string())),
        ("ts", Value::UInt(e.at.0)),
        ("s", Value::Str("t".to_string())),
        ("pid", Value::UInt(2)),
        ("tid", Value::UInt(u64::from(e.node.0))),
        (
            "args",
            Value::Object(args.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
        ),
    ])
}

/// Build the full trace-event document for `recording`.
pub fn chrome_trace(recording: &FlightRecording) -> Value {
    let mut events = vec![process_name(1, "telemetry"), process_name(2, "simulation")];
    for r in &recording.spans {
        events.push(event_to_chrome(r, 1, 1));
    }
    for e in &recording.entries {
        events.push(entry_to_chrome(e));
    }
    trace_document(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FlightMeta;
    use manet_sim::{NodeId, SimTime};
    use sam_telemetry::EventRecord;

    #[test]
    fn exports_spans_and_entries_with_metadata() {
        let mut rec = FlightRecording::new(FlightMeta::new("line", "dsr", 1));
        rec.spans.push(EventRecord {
            kind: "span".to_string(),
            id: 1,
            parent: 0,
            name: "discovery".to_string(),
            start_us: 0,
            dur_us: 100,
            trace: None,
            fields: vec![],
        });
        rec.entries.push(TraceEntry {
            id: 4,
            cause: Some(2),
            at: SimTime(1_500),
            node: NodeId(7),
            kind: TraceKind::Deliver {
                from: NodeId(3),
                channel: TraceChannel::Tunnel,
            },
        });
        let doc = chrome_trace(&rec);
        let events = doc.field("traceEvents").and_then(Value::as_array).unwrap();
        // 2 process_name metadata + 1 span + 1 entry.
        assert_eq!(events.len(), 4);
        let tunnel = &events[3];
        assert_eq!(
            tunnel.field("name").and_then(Value::as_str),
            Some("deliver.tunnel")
        );
        assert!(matches!(tunnel.field("tid"), Some(Value::UInt(7))));
        assert!(matches!(tunnel.field("ts"), Some(Value::UInt(1_500))));
        let args = tunnel.field("args").unwrap();
        assert!(matches!(args.field("cause"), Some(Value::UInt(2))));
        assert!(matches!(args.field("from"), Some(Value::UInt(3))));
        // The whole document survives a serialize→parse cycle.
        let text = serde_json::to_string(&doc).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(
            back.field("traceEvents")
                .and_then(Value::as_array)
                .map(|a| a.len()),
            Some(4)
        );
    }
}
