#!/usr/bin/env bash
# Perf regression gate (ROADMAP item 2): compare freshly emitted bench
# reports against the committed baselines in .baseline/ and fail on more
# than TOLERANCE_PCT throughput loss. bash + jq only — no new deps.
#
#   scripts/perf_gate.sh [FRESH_REPRO] [FRESH_SERVE]
#
# Defaults are BENCH_repro.json / BENCH_serve.json in the repo root,
# where the CI smoke steps write them. Baselines are refreshed only by
# deliberately committing a new .baseline/ file — never by CI.
set -euo pipefail

cd "$(dirname "$0")/.."
TOLERANCE_PCT="${PERF_GATE_TOLERANCE_PCT:-10}"
FRESH_REPRO="${1:-BENCH_repro.json}"
FRESH_SERVE="${2:-BENCH_serve.json}"
fail=0

# gate LABEL FRESH BASE — both throughput-like (higher is better); fails
# when FRESH sits below BASE by more than the tolerance.
gate() {
  local label="$1" fresh="$2" base="$3" ok floor
  floor=$(jq -n --argjson b "$base" --argjson tol "$TOLERANCE_PCT" '$b * (1 - $tol / 100)')
  ok=$(jq -n --argjson f "$fresh" --argjson floor "$floor" '$f >= $floor')
  if [ "$ok" = "true" ]; then
    printf 'perf-gate: %-22s ok    fresh=%s baseline=%s floor=%s\n' \
      "$label" "$fresh" "$base" "$floor"
  else
    printf 'perf-gate: %-22s FAIL  fresh=%s baseline=%s floor=%s (>%s%% throughput loss)\n' \
      "$label" "$fresh" "$base" "$floor" "$TOLERANCE_PCT" >&2
    fail=1
  fi
}

# reproduce reports wall seconds; compare as runs-per-second so "loss"
# means the same direction in both gates.
gate "reproduce (1/wall_s)" \
  "$(jq -e '1 / .wall_s' "$FRESH_REPRO")" \
  "$(jq -e '1 / .wall_s' .baseline/BENCH_repro.json)"

# Hot-path microbench throughputs (`micro` is an array of [key, per_s]
# pairs). Every key present in the baseline must be present in the
# fresh report and within tolerance; a key the fresh report dropped is
# a gate failure, not a skip.
while IFS= read -r key; do
  fresh_v=$(jq -e --arg k "$key" '[.micro[] | select(.[0] == $k) | .[1]][0] // error("missing micro key")' "$FRESH_REPRO") || {
    printf 'perf-gate: micro/%-16s FAIL  key missing from %s\n' "$key" "$FRESH_REPRO" >&2
    fail=1
    continue
  }
  base_v=$(jq -e --arg k "$key" '[.micro[] | select(.[0] == $k) | .[1]][0]' .baseline/BENCH_repro.json)
  gate "micro/$key" "$fresh_v" "$base_v"
done < <(jq -r '.micro[]?[0]' .baseline/BENCH_repro.json)

# loadgen reports throughput directly.
gate "serve (rps)" \
  "$(jq -e '.metrics.throughput_rps' "$FRESH_SERVE")" \
  "$(jq -e '.metrics.throughput_rps' .baseline/BENCH_serve.json)"

exit "$fail"
