//! Differential harness for the hot-path overhaul: every optimized data
//! structure must be *observably identical* to the implementation it
//! replaced.
//!
//! Three rewrites ride on the same determinism contract (a run is a pure
//! function of `(topology, behaviours, seed)`):
//!
//! * the struct-of-arrays event queue vs the pre-overhaul
//!   `BinaryHeap<Event>` (`Network::use_reference_queue`),
//! * the scratch-region RREQ policy stores vs the `HashMap`/`HashSet`
//!   originals (`RouterConfig::with_reference_stores`), and
//! * the `LinkMap` tabulation vs `HashMap<Link, u32>`
//!   (`RefLinkStats`).
//!
//! The harness runs the paper scenarios — two-cluster (Fig. 1), 6×6 grid
//! (Fig. 2), random disc (Fig. 9) — through the *reference* composition
//! (reference queue + reference stores + reference tabulation) and the
//! *optimized* composition, seeded, with and without a composed fault
//! plan, under two attacker variants, and asserts byte-identical traces,
//! route multisets, link-frequency tables, and `p_max`/`Δ`/suspect-link
//! verdicts. Run under `--release`: the reference path exists for
//! equivalence, not speed.

use manet_attacks::{attack_session, AttackWiring, WormholeConfig};
use manet_routing::{ProtocolKind, RouterConfig, DEFAULT_MAX_WAIT};
use manet_sim::{LatencyModel, TraceEntry};
use sam::{LinkStats, RefLinkStats};
use sam_experiments::prelude::*;
use sam_faults::{ChurnKind, FaultPlan, JitterSpec, LossBurst};

/// Everything one run exposes that the overhaul could have perturbed.
#[derive(Debug, PartialEq)]
struct Observed {
    /// Full structural event trace (ids, causes, times, kinds).
    trace: Vec<TraceEntry>,
    /// Engine events dispatched.
    events: u64,
    /// Route multiset (sorted node sequences).
    routes: Vec<Vec<u32>>,
    /// Sorted `(link, n_i)` table.
    table: Vec<((u32, u32), u32)>,
    /// Eq. 3.
    p_max: f64,
    /// Eq. 7.
    delta: f64,
    /// Localization verdict (deterministic tie-break).
    suspect: Option<(u32, u32)>,
    /// Discovery overhead (tx + rx).
    overhead: u64,
}

/// The composed fault plan for the faulted runs: a mid-discovery loss
/// burst, one crash, and duplication/reordering jitter — every fault
/// class the engine models, all stressing event ordering at once.
fn fault_plan() -> FaultPlan {
    FaultPlan::none()
        .named("differential")
        .with_burst(LossBurst::window(2_000, 9_000, 0.15))
        .with_churn(6_000, 3, ChurnKind::Crash)
        .with_jitter(JitterSpec {
            dup_prob: 0.05,
            dup_delay_us: 250,
            reorder_prob: 0.05,
            reorder_delay_us: 400,
        })
}

/// One attacked discovery through either composition. `reference`
/// selects the pre-overhaul implementations end to end.
fn run_path(
    topology: TopologyKind,
    worm_cfg: WormholeConfig,
    faults: Option<&FaultPlan>,
    run: u64,
    reference: bool,
) -> Observed {
    let spec = ScenarioSpec::attacked(topology, ProtocolKind::Mr);
    let run_seed = derive_seed(spec.base_seed, run);
    let plan = build_plan(&spec, run);
    let (src, dst) = draw_endpoints(&plan, run_seed);

    let mut router_cfg = RouterConfig::new(spec.protocol);
    if reference {
        router_cfg = router_cfg.with_reference_stores();
    }
    let wiring = AttackWiring::from_plan(&plan, &[0], worm_cfg);
    let mut session = attack_session(
        &plan,
        router_cfg,
        &wiring,
        LatencyModel::default(),
        run_seed,
    );
    if reference {
        // Must precede any scheduling (fault directives included):
        // backends share sequence numbering only from a cold start.
        session.network_mut().use_reference_queue();
        assert!(session.network_mut().uses_reference_queue());
    }
    if let Some(fp) = faults {
        sam_faults::apply(fp, session.network_mut()).expect("valid fault plan");
    }
    session.enable_trace(1_000_000);
    let outcome = session.discover(src, dst, DEFAULT_MAX_WAIT);
    assert!(!outcome.truncated, "event cap hit");
    let trace = session.take_trace().expect("tracing enabled");
    assert_eq!(trace.dropped(), 0, "trace capacity too small");

    let mut routes: Vec<Vec<u32>> = outcome
        .routes
        .iter()
        .map(|r| r.nodes().iter().map(|n| n.0).collect())
        .collect();
    routes.sort();

    // Each composition tabulates with its own implementation.
    let (mut table, p_max, delta, suspect) = if reference {
        let s = RefLinkStats::from_routes(&outcome.routes);
        let t: Vec<((u32, u32), u32)> =
            s.counts().map(|(l, c)| ((l.lo().0, l.hi().0), c)).collect();
        (
            t,
            s.p_max(),
            s.delta(),
            s.suspect_link().map(|l| (l.lo().0, l.hi().0)),
        )
    } else {
        let s = LinkStats::from_routes(&outcome.routes);
        let t: Vec<((u32, u32), u32)> =
            s.counts().map(|(l, c)| ((l.lo().0, l.hi().0), c)).collect();
        (
            t,
            s.p_max(),
            s.delta(),
            s.suspect_link().map(|l| (l.lo().0, l.hi().0)),
        )
    };
    table.sort();

    Observed {
        trace: trace.entries().to_vec(),
        events: outcome.events,
        routes,
        table,
        p_max,
        delta,
        suspect,
        overhead: outcome.overhead,
    }
}

/// Assert reference and optimized compositions agree on everything, with
/// a readable field-by-field failure before the full-struct comparison.
fn assert_equivalent(label: &str, topology: TopologyKind, cfg: WormholeConfig, faulted: bool) {
    let plan = fault_plan();
    let faults = faulted.then_some(&plan);
    for run in [0u64, 1] {
        let reference = run_path(topology, cfg, faults, run, true);
        let optimized = run_path(topology, cfg, faults, run, false);
        let ctx = format!("{label} run {run} faulted={faulted}");
        assert_eq!(reference.events, optimized.events, "{ctx}: event count");
        assert_eq!(
            reference.trace.len(),
            optimized.trace.len(),
            "{ctx}: trace length"
        );
        if let Some(i) =
            (0..reference.trace.len()).find(|&i| reference.trace[i] != optimized.trace[i])
        {
            panic!(
                "{ctx}: trace diverges at entry {i}:\n  reference: {:?}\n  optimized: {:?}",
                reference.trace[i], optimized.trace[i]
            );
        }
        assert_eq!(reference.routes, optimized.routes, "{ctx}: route multiset");
        assert_eq!(reference.table, optimized.table, "{ctx}: link table");
        assert_eq!(reference.p_max, optimized.p_max, "{ctx}: p_max");
        assert_eq!(reference.delta, optimized.delta, "{ctx}: delta");
        assert_eq!(reference.suspect, optimized.suspect, "{ctx}: suspect link");
        assert_eq!(reference, optimized, "{ctx}");
        // The run must have produced something worth pinning.
        assert!(
            !reference.routes.is_empty(),
            "{ctx}: discovery found no routes — the comparison is vacuous"
        );
    }
}

#[test]
fn cluster1_relay_wormhole_matches() {
    assert_equivalent(
        "cluster1/relay",
        TopologyKind::cluster1(),
        WormholeConfig::default(),
        false,
    );
}

#[test]
fn cluster1_blackholing_wormhole_matches_under_faults() {
    assert_equivalent(
        "cluster1/blackholing",
        TopologyKind::cluster1(),
        WormholeConfig::blackholing(),
        true,
    );
}

#[test]
fn grid6x6_relay_wormhole_matches_under_faults() {
    assert_equivalent(
        "grid6x6/relay",
        TopologyKind::uniform6x6(),
        WormholeConfig::default(),
        true,
    );
}

#[test]
fn grid6x6_blackholing_wormhole_matches() {
    assert_equivalent(
        "grid6x6/blackholing",
        TopologyKind::uniform6x6(),
        WormholeConfig::blackholing(),
        false,
    );
}

#[test]
fn random_disc_relay_wormhole_matches() {
    assert_equivalent(
        "random/relay",
        TopologyKind::Random,
        WormholeConfig::default(),
        false,
    );
}

#[test]
fn random_disc_selective_wormhole_matches_under_faults() {
    assert_equivalent(
        "random/selective",
        TopologyKind::Random,
        WormholeConfig::selective(0.5),
        true,
    );
}

/// The detector-trait path must be *observably identical* to the
/// concrete procedure it generalizes: `run_procedure` driving a
/// [`SamDetector`] as a `&dyn Detector` against the exact routes the
/// seed cluster-1 scenarios produce, compared field-by-field with
/// `Procedure::execute` — same outcome class, same `p_max`/`Δ`/suspect,
/// same selected routes, same confirmed report. This pins the
/// api-redesign contract the same way the queue/store rewrites above
/// pin theirs.
#[test]
fn trait_object_sam_path_matches_concrete_procedure() {
    use sam::prelude::*;

    let topology = TopologyKind::cluster1();
    let protocol = ProtocolKind::Mr;
    let normal = ScenarioSpec::normal(topology, protocol);
    let attacked = normal.with_wormholes(1);

    // Train exactly as the experiments do: clean normal runs, offset
    // from the evaluation indices.
    let training: Vec<Vec<manet_routing::Route>> = (0..8)
        .map(|i| run_once_with_routes(&normal, 1000 + i).1)
        .collect();
    let sam_cfg = SamConfig::calibrated();
    let profile = NormalProfile::train(&training, sam_cfg.pmf_bins);

    let detector = SamDetector::new(sam_cfg);
    let procedure = Procedure::new(SamDetector::new(sam_cfg), ProcedureConfig::default());
    let proc_cfg = ProcedureConfig::default();

    let mut confirmed = 0usize;
    let mut normal_runs = 0usize;
    // Attacked runs probe through a transport that blackholes the
    // suspect link (the tunnel swallows probes), normal runs through an
    // all-ack transport — both compositions see identical probe
    // behaviour either way, so the mix exercises every outcome class.
    for (spec, blackhole) in [(&attacked, true), (&normal, false)] {
        for run in 0..4u64 {
            let (_, routes) = run_once_with_routes(spec, run);
            assert!(!routes.is_empty(), "run {run}: vacuous comparison");

            let suspect = detector
                .analyze(&routes, &profile)
                .suspect_link
                .filter(|_| blackhole);
            let (concrete, trait_path) = match suspect {
                Some(link) => {
                    let mut t1 = blackhole_transport(link);
                    let concrete = procedure.execute(&routes, &profile, &mut t1);
                    let mut t2 = blackhole_transport(link);
                    let input = DetectorInput::new(&routes, &profile);
                    (
                        concrete,
                        run_procedure(&detector, &input, &proc_cfg, &mut t2),
                    )
                }
                None => {
                    let mut t1 = all_ack_transport();
                    let concrete = procedure.execute(&routes, &profile, &mut t1);
                    let mut t2 = all_ack_transport();
                    let input = DetectorInput::new(&routes, &profile);
                    (
                        concrete,
                        run_procedure(&detector, &input, &proc_cfg, &mut t2),
                    )
                }
            };

            let ctx = format!("{:?} run {run}", spec.topology);
            match (&concrete, &trait_path) {
                (
                    DetectionOutcome::Normal { selected_routes: a },
                    DetectorOutcome::Normal {
                        verdict,
                        selected_routes: b,
                    },
                ) => {
                    normal_runs += 1;
                    assert!(!verdict.anomalous, "{ctx}: verdict class");
                    assert_eq!(a, b, "{ctx}: selected routes");
                }
                (
                    DetectionOutcome::SuspiciousUnconfirmed {
                        analysis,
                        selected_routes: a,
                    },
                    DetectorOutcome::SuspiciousUnconfirmed {
                        verdict,
                        selected_routes: b,
                    },
                ) => {
                    assert_eq!(analysis.features.p_max, verdict.p_max, "{ctx}: p_max");
                    assert_eq!(analysis.features.delta, verdict.delta, "{ctx}: delta");
                    assert_eq!(
                        analysis.suspect_link, verdict.suspect_link,
                        "{ctx}: suspect"
                    );
                    assert_eq!(analysis.lambda, verdict.lambda, "{ctx}: lambda");
                    assert_eq!(a, b, "{ctx}: selected routes");
                }
                (
                    DetectionOutcome::Confirmed {
                        report: ra,
                        analysis,
                    },
                    DetectorOutcome::Confirmed {
                        verdict,
                        report: rb,
                    },
                ) => {
                    confirmed += 1;
                    assert_eq!(analysis.features.p_max, verdict.p_max, "{ctx}: p_max");
                    assert_eq!(analysis.features.delta, verdict.delta, "{ctx}: delta");
                    assert_eq!(
                        analysis.suspect_link, verdict.suspect_link,
                        "{ctx}: suspect"
                    );
                    assert_eq!(ra, rb, "{ctx}: confirmed report");
                }
                (a, b) => {
                    panic!("{ctx}: outcome classes diverge:\n  concrete: {a:?}\n  trait: {b:?}")
                }
            }
        }
    }
    // The mix must exercise both ends or the equivalence is vacuous.
    assert!(confirmed > 0, "no confirmed verdicts in the seed scenarios");
    assert!(normal_runs > 0, "no normal verdicts in the seed scenarios");
}

/// The dense tabulation and the reference tabulation must agree *on the
/// same captured route set* too (the end-to-end checks above compare
/// them across separately-executed runs).
#[test]
fn tabulations_agree_on_one_capture() {
    let spec = ScenarioSpec::attacked(TopologyKind::cluster1(), ProtocolKind::Mr);
    let (_, routes) = run_once_with_routes(&spec, 0);
    assert!(!routes.is_empty());
    let dense = LinkStats::from_routes(&routes);
    let reference = RefLinkStats::from_routes(&routes);
    assert_eq!(dense.total_links(), reference.total_links());
    assert_eq!(dense.distinct_links(), reference.distinct_links());
    assert_eq!(dense.p_max(), reference.p_max());
    assert_eq!(dense.delta(), reference.delta());
    assert_eq!(dense.suspect_link(), reference.suspect_link());
    let mut a: Vec<_> = dense.counts().collect();
    let mut b: Vec<_> = reference.counts().collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
}
