//! Property tests for the fault-injection determinism contract
//! (`sam-faults`): same seed + same plan ⇒ byte-identical traces and
//! route sets, and an all-zero-probability plan is trace-identical to
//! the no-faults baseline.

use manet_attacks::prelude::*;
use manet_routing::prelude::*;
use manet_sim::prelude::*;
use proptest::prelude::*;
use sam_experiments::prelude::*;
use sam_faults::{ChurnKind, FaultPlan, JitterSpec, LossBurst, Region};

/// One traced attacked discovery on the 6×6 grid; returns the exact
/// trace bytes and the collected route set.
fn traced_run(faults: Option<&FaultPlan>, run: u64) -> (String, Vec<Route>) {
    let spec = ScenarioSpec::attacked(TopologyKind::uniform6x6(), ProtocolKind::Mr);
    let run_seed = derive_seed(spec.base_seed, run);
    let plan = build_plan(&spec, run);
    let (src, dst) = draw_endpoints(&plan, run_seed);
    let wiring = AttackWiring::from_plan(&plan, &[0], WormholeConfig::default());
    let mut session = attack_session(
        &plan,
        RouterConfig::new(spec.protocol),
        &wiring,
        LatencyModel::default(),
        run_seed,
    );
    if let Some(f) = faults {
        sam_faults::apply(f, session.network_mut()).expect("generated plans are valid");
    }
    session.enable_trace(400_000);
    let out = session.discover(src, dst, DEFAULT_MAX_WAIT);
    let trace = session.take_trace().expect("tracing enabled");
    let bytes = serde_json::to_string(trace.entries()).expect("trace serializes");
    (bytes, out.routes)
}

/// A burst anywhere in the first 40 ms, any probability; roughly half
/// carry a disc region over the 6×6 grid (coordinates 0..=5).
fn arb_burst() -> impl Strategy<Value = LossBurst> {
    (
        0u64..40_000,
        1u64..40_000,
        0.0f64..=1.0,
        (0.0f64..1.0, 0.0f64..5.0, 0.0f64..5.0, 0.5f64..4.0),
    )
        .prop_map(|(start, len, prob, (gate, x, y, radius))| LossBurst {
            start_us: start,
            end_us: start + len,
            prob,
            region: (gate < 0.5).then_some(Region { x, y, radius }),
        })
}

/// Churn over the grid's 36 nodes inside the discovery window.
fn arb_churn() -> impl Strategy<Value = (u64, u32, ChurnKind)> {
    (0u64..40_000, 0u32..36, 0u8..4).prop_map(|(at_us, node, k)| {
        let kind = match k {
            0 => ChurnKind::Crash,
            1 => ChurnKind::Recover,
            2 => ChurnKind::Leave,
            _ => ChurnKind::Join,
        };
        (at_us, node, kind)
    })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        proptest::collection::vec(arb_burst(), 0..3),
        proptest::collection::vec(arb_churn(), 0..3),
        (0.0f64..1.0, 0.0f64..0.3, 0.0f64..0.3),
    )
        .prop_map(|(bursts, churn, (gate, dup_prob, reorder_prob))| {
            let mut plan = FaultPlan::none().named("prop");
            for b in bursts {
                plan = plan.with_burst(b);
            }
            for (at_us, node, kind) in churn {
                plan = plan.with_churn(at_us, node, kind);
            }
            if gate < 0.5 {
                plan = plan.with_jitter(JitterSpec {
                    dup_prob,
                    dup_delay_us: 300,
                    reorder_prob,
                    reorder_delay_us: 500,
                });
            }
            plan
        })
}

proptest! {
    #[test]
    fn same_seed_same_plan_is_byte_identical(plan in arb_plan(), run in 0u64..16) {
        let (trace_a, routes_a) = traced_run(Some(&plan), run);
        let (trace_b, routes_b) = traced_run(Some(&plan), run);
        prop_assert_eq!(trace_a, trace_b, "trace bytes diverged for {:?}", &plan);
        prop_assert_eq!(routes_a, routes_b);
    }

    #[test]
    fn zero_probability_plan_matches_no_faults_baseline(
        plan in arb_plan(),
        run in 0u64..16,
    ) {
        // Null out every stochastic element: what remains cannot fire,
        // so the run must be trace-identical to no plan at all.
        let mut zeroed = plan;
        for b in &mut zeroed.loss_bursts {
            b.prob = 0.0;
        }
        zeroed.churn.clear();
        if let Some(j) = &mut zeroed.jitter {
            j.dup_prob = 0.0;
            j.reorder_prob = 0.0;
        }
        let (trace_plan, routes_plan) = traced_run(Some(&zeroed), run);
        let (trace_none, routes_none) = traced_run(None, run);
        prop_assert_eq!(trace_plan, trace_none, "inert plan perturbed the run");
        prop_assert_eq!(routes_plan, routes_none);
    }

    #[test]
    fn plan_json_round_trip_is_lossless(plan in arb_plan()) {
        let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        prop_assert_eq!(back, plan);
    }
}
