//! Property-based tests for the simulator substrate: topologies, the
//! latency model, tier ranges, and the forwarding policies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use wormhole_sam::prelude::*;
use wormhole_sam::routing::packet::{Rreq, RreqId};
use wormhole_sam::sim::event::{EventKind, EventQueue};

/// One step of an arbitrary event-queue workload.
#[derive(Clone, Debug)]
enum QueueOp {
    /// Schedule a timer at this (possibly past) absolute time.
    Schedule(u64),
    /// Pop the earliest pending event (may be a no-op on empty).
    Pop,
}

/// Schedule-biased (3:2) so runs build up backlog to drain.
fn arb_queue_ops() -> impl Strategy<Value = Vec<QueueOp>> {
    proptest::collection::vec((0u8..5, 0u64..200), 1..150).prop_map(|steps| {
        steps
            .into_iter()
            .map(|(sel, at)| {
                if sel < 3 {
                    QueueOp::Schedule(at)
                } else {
                    QueueOp::Pop
                }
            })
            .collect()
    })
}

fn arb_positions(n: usize, side: f64) -> impl Strategy<Value = Vec<Pos>> {
    proptest::collection::vec((0.0..side, 0.0..side), 2..=n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Pos::new(x, y)).collect())
}

proptest! {
    #[test]
    fn topology_neighbors_are_symmetric_and_irreflexive(
        positions in arb_positions(40, 10.0),
        range in 0.5f64..4.0,
    ) {
        let topo = Topology::new(positions, range);
        for a in topo.nodes() {
            prop_assert!(!topo.are_neighbors(a, a), "self-neighbour {a}");
            for &b in topo.neighbors(a) {
                prop_assert!(topo.are_neighbors(b, a), "{a}-{b} asymmetric");
                prop_assert!(topo.dist(a, b) <= range + 1e-12);
            }
        }
    }

    #[test]
    fn non_neighbors_are_out_of_range(
        positions in arb_positions(25, 8.0),
        range in 0.5f64..3.0,
    ) {
        let topo = Topology::new(positions, range);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && !topo.are_neighbors(a, b) {
                    prop_assert!(topo.dist(a, b) > range);
                }
            }
        }
    }

    #[test]
    fn bfs_hops_satisfy_triangle_property(positions in arb_positions(25, 6.0)) {
        let topo = Topology::new(positions, 2.0);
        let src = NodeId(0);
        let dist = bfs_hops(&topo, src);
        // Each reachable node's distance differs from every neighbour's by
        // at most one.
        for u in topo.nodes() {
            if let Some(du) = dist[u.idx()] {
                for &v in topo.neighbors(u) {
                    let dv = dist[v.idx()].expect("neighbour of reachable is reachable");
                    prop_assert!(du.abs_diff(dv) <= 1, "{u}:{du} vs {v}:{dv}");
                }
            }
        }
    }

    #[test]
    fn shortest_path_length_matches_bfs(positions in arb_positions(25, 6.0)) {
        let topo = Topology::new(positions, 2.0);
        let a = NodeId(0);
        let b = NodeId::from_idx(topo.len() - 1);
        let hops = hop_distance(&topo, a, b);
        let path = shortest_path(&topo, a, b);
        match (hops, path) {
            (Some(h), Some(p)) => prop_assert_eq!(p.len() as u32, h + 1),
            (None, None) => {}
            (h, p) => prop_assert!(false, "inconsistent: {h:?} vs {p:?}"),
        }
    }

    #[test]
    fn latency_respects_base_floor(
        base in 1e-4f64..1e-2,
        per_unit in 0.0f64..1e-3,
        jitter in 0.0f64..1e-2,
        dist in 0.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let model = LatencyModel { base_secs: base, per_unit_secs: per_unit, jitter_secs: jitter };
        let mut rng = StdRng::seed_from_u64(seed);
        let lat = model.sample(dist, &mut rng).as_micros() as f64 / 1e6;
        prop_assert!(lat + 5e-7 >= base + per_unit * dist, "lat {lat} below floor");
        prop_assert!(lat <= base + per_unit * dist + jitter + 5e-7, "lat {lat} above ceiling");
    }

    #[test]
    fn random_topology_plans_always_validate(seed in 0u64..50) {
        let plan = random_topology(seed);
        prop_assert!(plan.validate().is_ok());
        prop_assert!(plan.tunnel_span_hops(0).unwrap_or(0) >= 3);
    }

    #[test]
    fn uniform_grids_validate_across_sizes(cols in 3usize..12, rows in 2usize..8, tier in 1u8..3) {
        let plan = uniform_grid(cols, rows, tier);
        prop_assert!(plan.validate().is_ok());
        prop_assert_eq!(plan.topology.len(), cols * rows + 2);
    }

    #[test]
    fn dsr_policy_forwards_each_discovery_exactly_once(
        seqs in proptest::collection::vec(0u32..5, 1..30),
    ) {
        let me = NodeId(99);
        let mut policy = ForwardPolicy::new(ProtocolKind::Dsr);
        let mut forwarded_per_seq = std::collections::HashMap::new();
        for (i, seq) in seqs.iter().enumerate() {
            let rreq = Rreq {
                id: RreqId { src: NodeId(0), seq: *seq },
                dst: NodeId(1),
                path: vec![NodeId(0), NodeId(2 + (i as u32 % 3))].into(),
            };
            if policy.decide(me, &rreq) == ForwardDecision::Forward {
                *forwarded_per_seq.entry(*seq).or_insert(0u32) += 1;
            }
        }
        for (&seq, &count) in &forwarded_per_seq {
            prop_assert_eq!(count, 1, "seq {} forwarded {} times", seq, count);
        }
    }

    #[test]
    fn mr_never_forwards_longer_than_first(
        hop_counts in proptest::collection::vec(1usize..6, 2..20),
    ) {
        let me = NodeId(99);
        let mut policy = ForwardPolicy::new(ProtocolKind::Mr);
        let first = hop_counts[0];
        for (i, &h) in hop_counts.iter().enumerate() {
            // Build a path of h+1 distinct nodes (hop count h), varying by i.
            let path: Vec<NodeId> = (0..=h).map(|k| NodeId((i * 10 + k) as u32)).collect();
            let rreq = Rreq {
                id: RreqId { src: NodeId(500), seq: 1 },
                dst: NodeId(501),
                path: path.into(),
            };
            let d = policy.decide(me, &rreq);
            if h > first {
                prop_assert_eq!(d, ForwardDecision::Drop, "hop {} > first {} forwarded", h, first);
            }
        }
    }

    #[test]
    fn tier_range_monotone_in_tier(k in 1u8..5) {
        prop_assert!(range_for_tier(k + 1) > range_for_tier(k));
    }

    /// The struct-of-arrays event queue under arbitrary schedule/pop
    /// interleavings: every pop returns the minimum pending `(at, seq)`
    /// (checked against both the reference `BinaryHeap` backend and an
    /// ordered-set model), the arena never leaks a slot, and its
    /// capacity never exceeds the workload's concurrency high-water
    /// mark.
    #[test]
    fn soa_queue_matches_reference_and_never_leaks_slots(ops in arb_queue_ops()) {
        let mut fast: EventQueue<()> = EventQueue::new();
        let mut reference: EventQueue<()> = EventQueue::new_reference();
        // Ground-truth model: the set of pending (at, seq) keys. `(at,
        // seq)` is a total order, so "pop the minimum" fully specifies
        // correct behaviour.
        let mut pending: BTreeSet<(SimTime, u64)> = BTreeSet::new();
        let mut next_seq = 0u64;
        let mut high_water = 0usize;

        for (i, op) in ops.iter().enumerate() {
            match op {
                QueueOp::Schedule(at) => {
                    let at = SimTime(*at);
                    let kind = EventKind::Timer { node: NodeId(0), key: i as u64 };
                    fast.schedule(at, kind.clone());
                    reference.schedule(at, kind);
                    pending.insert((at, next_seq));
                    next_seq += 1;
                    high_water = high_water.max(pending.len());
                }
                QueueOp::Pop => {
                    let a = fast.pop().map(|e| (e.at, e.seq));
                    let b = reference.pop().map(|e| (e.at, e.seq));
                    prop_assert_eq!(a, b, "backends disagree at op {}", i);
                    let expected = pending.iter().next().copied();
                    prop_assert_eq!(a, expected, "pop is not the minimum at op {}", i);
                    if let Some(key) = a {
                        pending.remove(&key);
                    }
                }
            }
            // Arena invariants hold at every step, not just at the end.
            prop_assert_eq!(fast.len(), pending.len());
            prop_assert_eq!(fast.live_slots(), fast.len());
            prop_assert_eq!(
                fast.live_slots() + fast.free_slots(),
                fast.slot_capacity()
            );
        }

        // Drain: the tail must come out in full (at, seq) order too.
        while let Some(e) = fast.pop() {
            let b = reference.pop().map(|ev| (ev.at, ev.seq));
            prop_assert_eq!(Some((e.at, e.seq)), b);
            let expected = pending.iter().next().copied();
            prop_assert_eq!(Some((e.at, e.seq)), expected);
            pending.remove(&(e.at, e.seq));
        }
        prop_assert!(reference.pop().is_none());
        prop_assert!(pending.is_empty());

        // No slot leaked: the arena is fully recycled and never grew
        // past the maximum number of simultaneously pending events.
        prop_assert_eq!(fast.live_slots(), 0);
        prop_assert_eq!(fast.free_slots(), fast.slot_capacity());
        prop_assert!(
            fast.slot_capacity() <= high_water,
            "arena {} slots > high-water {}",
            fast.slot_capacity(),
            high_water
        );
    }
}
