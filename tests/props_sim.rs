//! Property-based tests for the simulator substrate: topologies, the
//! latency model, tier ranges, and the forwarding policies.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wormhole_sam::prelude::*;
use wormhole_sam::routing::packet::{Rreq, RreqId};

fn arb_positions(n: usize, side: f64) -> impl Strategy<Value = Vec<Pos>> {
    proptest::collection::vec((0.0..side, 0.0..side), 2..=n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Pos::new(x, y)).collect())
}

proptest! {
    #[test]
    fn topology_neighbors_are_symmetric_and_irreflexive(
        positions in arb_positions(40, 10.0),
        range in 0.5f64..4.0,
    ) {
        let topo = Topology::new(positions, range);
        for a in topo.nodes() {
            prop_assert!(!topo.are_neighbors(a, a), "self-neighbour {a}");
            for &b in topo.neighbors(a) {
                prop_assert!(topo.are_neighbors(b, a), "{a}-{b} asymmetric");
                prop_assert!(topo.dist(a, b) <= range + 1e-12);
            }
        }
    }

    #[test]
    fn non_neighbors_are_out_of_range(
        positions in arb_positions(25, 8.0),
        range in 0.5f64..3.0,
    ) {
        let topo = Topology::new(positions, range);
        for a in topo.nodes() {
            for b in topo.nodes() {
                if a != b && !topo.are_neighbors(a, b) {
                    prop_assert!(topo.dist(a, b) > range);
                }
            }
        }
    }

    #[test]
    fn bfs_hops_satisfy_triangle_property(positions in arb_positions(25, 6.0)) {
        let topo = Topology::new(positions, 2.0);
        let src = NodeId(0);
        let dist = bfs_hops(&topo, src);
        // Each reachable node's distance differs from every neighbour's by
        // at most one.
        for u in topo.nodes() {
            if let Some(du) = dist[u.idx()] {
                for &v in topo.neighbors(u) {
                    let dv = dist[v.idx()].expect("neighbour of reachable is reachable");
                    prop_assert!(du.abs_diff(dv) <= 1, "{u}:{du} vs {v}:{dv}");
                }
            }
        }
    }

    #[test]
    fn shortest_path_length_matches_bfs(positions in arb_positions(25, 6.0)) {
        let topo = Topology::new(positions, 2.0);
        let a = NodeId(0);
        let b = NodeId::from_idx(topo.len() - 1);
        let hops = hop_distance(&topo, a, b);
        let path = shortest_path(&topo, a, b);
        match (hops, path) {
            (Some(h), Some(p)) => prop_assert_eq!(p.len() as u32, h + 1),
            (None, None) => {}
            (h, p) => prop_assert!(false, "inconsistent: {h:?} vs {p:?}"),
        }
    }

    #[test]
    fn latency_respects_base_floor(
        base in 1e-4f64..1e-2,
        per_unit in 0.0f64..1e-3,
        jitter in 0.0f64..1e-2,
        dist in 0.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let model = LatencyModel { base_secs: base, per_unit_secs: per_unit, jitter_secs: jitter };
        let mut rng = StdRng::seed_from_u64(seed);
        let lat = model.sample(dist, &mut rng).as_micros() as f64 / 1e6;
        prop_assert!(lat + 5e-7 >= base + per_unit * dist, "lat {lat} below floor");
        prop_assert!(lat <= base + per_unit * dist + jitter + 5e-7, "lat {lat} above ceiling");
    }

    #[test]
    fn random_topology_plans_always_validate(seed in 0u64..50) {
        let plan = random_topology(seed);
        prop_assert!(plan.validate().is_ok());
        prop_assert!(plan.tunnel_span_hops(0).unwrap_or(0) >= 3);
    }

    #[test]
    fn uniform_grids_validate_across_sizes(cols in 3usize..12, rows in 2usize..8, tier in 1u8..3) {
        let plan = uniform_grid(cols, rows, tier);
        prop_assert!(plan.validate().is_ok());
        prop_assert_eq!(plan.topology.len(), cols * rows + 2);
    }

    #[test]
    fn dsr_policy_forwards_each_discovery_exactly_once(
        seqs in proptest::collection::vec(0u32..5, 1..30),
    ) {
        let me = NodeId(99);
        let mut policy = ForwardPolicy::new(ProtocolKind::Dsr);
        let mut forwarded_per_seq = std::collections::HashMap::new();
        for (i, seq) in seqs.iter().enumerate() {
            let rreq = Rreq {
                id: RreqId { src: NodeId(0), seq: *seq },
                dst: NodeId(1),
                path: vec![NodeId(0), NodeId(2 + (i as u32 % 3))],
            };
            if policy.decide(me, &rreq) == ForwardDecision::Forward {
                *forwarded_per_seq.entry(*seq).or_insert(0u32) += 1;
            }
        }
        for (&seq, &count) in &forwarded_per_seq {
            prop_assert_eq!(count, 1, "seq {} forwarded {} times", seq, count);
        }
    }

    #[test]
    fn mr_never_forwards_longer_than_first(
        hop_counts in proptest::collection::vec(1usize..6, 2..20),
    ) {
        let me = NodeId(99);
        let mut policy = ForwardPolicy::new(ProtocolKind::Mr);
        let first = hop_counts[0];
        for (i, &h) in hop_counts.iter().enumerate() {
            // Build a path of h+1 distinct nodes (hop count h), varying by i.
            let path: Vec<NodeId> = (0..=h).map(|k| NodeId((i * 10 + k) as u32)).collect();
            let rreq = Rreq {
                id: RreqId { src: NodeId(500), seq: 1 },
                dst: NodeId(501),
                path,
            };
            let d = policy.decide(me, &rreq);
            if h > first {
                prop_assert_eq!(d, ForwardDecision::Drop, "hop {} > first {} forwarded", h, first);
            }
        }
    }

    #[test]
    fn tier_range_monotone_in_tier(k in 1u8..5) {
        prop_assert!(range_for_tier(k + 1) > range_for_tier(k));
    }
}
