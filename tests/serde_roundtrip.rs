//! Serialization round-trips for the types that cross process boundaries:
//! wire messages (logged/traced), network plans (scenario files), trained
//! profiles (persisted between sessions), and experiment tables
//! (`results/*.json`).

use wormhole_sam::prelude::*;
use wormhole_sam::routing::packet::RerrPkt;

fn route(ids: &[u32]) -> Route {
    Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
}

#[test]
fn routing_messages_round_trip() {
    let msgs = vec![
        RoutingMsg::Rreq(Rreq {
            id: RreqId {
                src: NodeId(1),
                seq: 4,
            },
            dst: NodeId(9),
            path: vec![NodeId(1), NodeId(2)].into(),
        }),
        RoutingMsg::Rrep(Rrep {
            id: RreqId {
                src: NodeId(1),
                seq: 4,
            },
            route: route(&[1, 2, 9]),
        }),
        RoutingMsg::Data(DataPkt {
            route: route(&[1, 2, 9]),
            seq: 7,
        }),
        RoutingMsg::Ack(AckPkt {
            route: route(&[9, 2, 1]),
            seq: 7,
        }),
        RoutingMsg::Rerr(RerrPkt {
            route: route(&[1, 2, 9]),
            broken_from: NodeId(2),
            broken_to: NodeId(9),
        }),
    ];
    for msg in msgs {
        let json = serde_json::to_string(&msg).unwrap();
        let back: RoutingMsg = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }
}

#[test]
fn network_plan_round_trips_with_connectivity() {
    let plan = two_cluster(1);
    let json = serde_json::to_string(&plan).unwrap();
    let back: NetworkPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back.topology.positions(), plan.topology.positions());
    assert_eq!(back.src_pool, plan.src_pool);
    assert_eq!(back.attacker_pairs, plan.attacker_pairs);
    // Neighbour lists survive (serialized, not recomputed).
    for n in plan.topology.nodes() {
        assert_eq!(back.topology.neighbors(n), plan.topology.neighbors(n));
    }
    back.validate().unwrap();
}

#[test]
fn trained_profile_round_trips_and_still_detects() {
    let sets = vec![
        vec![
            route(&[0, 1, 2, 9]),
            route(&[0, 3, 4, 9]),
            route(&[0, 5, 6, 9]),
        ],
        vec![
            route(&[0, 1, 4, 9]),
            route(&[0, 3, 2, 9]),
            route(&[0, 5, 4, 9]),
        ],
        vec![
            route(&[0, 1, 6, 9]),
            route(&[0, 3, 6, 9]),
            route(&[0, 5, 2, 9]),
        ],
    ];
    let profile = NormalProfile::train(&sets, 20);
    let json = serde_json::to_string(&profile).unwrap();
    let back: NormalProfile = serde_json::from_str(&json).unwrap();
    assert_eq!(back.p_max, profile.p_max);
    assert_eq!(back.delta, profile.delta);
    assert_eq!(back.hops, profile.hops);

    // A detector using the deserialized profile behaves identically.
    let attacked = vec![
        route(&[0, 7, 8, 9]),
        route(&[0, 1, 7, 8, 9]),
        route(&[0, 2, 7, 8, 9]),
        route(&[0, 3, 7, 8, 9]),
        route(&[0, 5, 7, 8, 9]),
        route(&[0, 6, 7, 8, 9]),
    ];
    let d = SamDetector::default();
    let a = d.analyze(&attacked, &profile);
    let b = d.analyze(&attacked, &back);
    assert_eq!(a.lambda, b.lambda);
    assert_eq!(a.anomalous, b.anomalous);
    assert_eq!(a.suspect_link, b.suspect_link);
}

#[test]
fn analysis_and_reports_serialize() {
    let sets = vec![vec![route(&[0, 1, 2, 9]), route(&[0, 3, 4, 9])]];
    let profile = NormalProfile::train(&sets, 20);
    let d = SamDetector::default();
    let analysis = d.analyze(&[route(&[0, 1, 2, 9])], &profile);
    let json = serde_json::to_string(&analysis).unwrap();
    assert!(json.contains("lambda"));

    let report = AttackReport {
        suspect_link: (NodeId(7), NodeId(8)),
        lambda: 0.02,
        p_max: 0.3,
        delta: 0.6,
        probe_ack_ratio: 0.0,
        paths_tested: 3,
        isolate: vec![NodeId(7), NodeId(8)],
    };
    let back: AttackReport =
        serde_json::from_str(&serde_json::to_string(&report).unwrap()).unwrap();
    assert_eq!(back.suspect_link, report.suspect_link);
    assert_eq!(back.isolate, report.isolate);
}

#[test]
fn run_records_and_tables_serialize() {
    let spec = ScenarioSpec::attacked(TopologyKind::uniform6x6(), ProtocolKind::Mr);
    let rec = run_once(&spec, 0);
    let json = serde_json::to_string(&rec).unwrap();
    let back: RunRecord = serde_json::from_str(&json).unwrap();
    // JSON float text loses the last ULP; integers are exact.
    assert!((back.p_max - rec.p_max).abs() < 1e-12);
    assert_eq!(back.overhead, rec.overhead);
    assert_eq!(back.n_routes, rec.n_routes);

    let tables = run_experiment("fig9", 1).unwrap();
    let json = tables[0].to_json();
    let back: Table = serde_json::from_str(&json).unwrap();
    // Floats lose the last ULP through JSON text, so compare structure
    // and the stable (string/int) cells, then spot-check floats loosely.
    assert_eq!(back.id, tables[0].id);
    assert_eq!(back.columns, tables[0].columns);
    assert_eq!(back.rows.len(), tables[0].rows.len());
    for (ra, rb) in back.rows.iter().zip(&tables[0].rows) {
        assert_eq!(ra.len(), rb.len());
        for (ca, cb) in ra.iter().zip(rb) {
            match (ca, cb) {
                (Cell::Num(a), Cell::Num(b)) => assert!((a - b).abs() < 1e-9),
                _ => assert_eq!(ca, cb),
            }
        }
    }
}
