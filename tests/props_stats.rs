//! Property-based tests for SAM's statistical core: link statistics,
//! PMFs, and profile math. These are the invariants the detector's
//! correctness rests on, exercised over arbitrary route sets.

use proptest::prelude::*;
use wormhole_sam::prelude::*;

/// Strategy: a loop-free route over node ids `0..pool` with 2..=len nodes.
fn arb_route(pool: u32, max_len: usize) -> impl Strategy<Value = Route> {
    proptest::sample::subsequence((0..pool).collect::<Vec<u32>>(), 2..=max_len.max(2))
        .prop_shuffle()
        .prop_map(|ids| {
            Route::new(ids.into_iter().map(NodeId).collect()).expect("subsequence is loop-free")
        })
}

/// Strategy: a route set of 1..=n routes.
fn arb_route_set(routes: usize) -> impl Strategy<Value = Vec<Route>> {
    proptest::collection::vec(arb_route(24, 8), 1..=routes)
}

proptest! {
    #[test]
    fn relative_frequencies_form_a_distribution(routes in arb_route_set(20)) {
        let stats = LinkStats::from_routes(&routes);
        let freqs = stats.relative_frequencies();
        prop_assert_eq!(freqs.len(), stats.distinct_links());
        let sum: f64 = freqs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum = {sum}");
        for f in freqs {
            prop_assert!(f > 0.0 && f <= 1.0);
        }
    }

    #[test]
    fn total_links_equals_sum_of_hops(routes in arb_route_set(20)) {
        let stats = LinkStats::from_routes(&routes);
        let hops: usize = routes.iter().map(Route::hops).sum();
        prop_assert_eq!(stats.total_links(), hops as u64);
        prop_assert_eq!(stats.route_count(), routes.len());
    }

    #[test]
    fn p_max_and_delta_are_bounded(routes in arb_route_set(20)) {
        let stats = LinkStats::from_routes(&routes);
        prop_assert!(stats.p_max() > 0.0 && stats.p_max() <= 1.0);
        prop_assert!((0.0..=1.0).contains(&stats.delta()));
    }

    #[test]
    fn suspect_link_has_the_max_count(routes in arb_route_set(20)) {
        let stats = LinkStats::from_routes(&routes);
        let suspect = stats.suspect_link().expect("non-empty set has a mode");
        let (n_max, _) = stats.top_two();
        prop_assert_eq!(stats.count(suspect), n_max);
    }

    #[test]
    fn stats_are_route_order_invariant(mut routes in arb_route_set(12), seed in any::<u64>()) {
        let before = LinkStats::from_routes(&routes);
        // Deterministic shuffle from the seed.
        let n = routes.len();
        for i in (1..n).rev() {
            let j = (seed as usize).wrapping_mul(i).wrapping_add(i) % (i + 1);
            routes.swap(i, j);
        }
        let after = LinkStats::from_routes(&routes);
        prop_assert_eq!(before.p_max(), after.p_max());
        prop_assert_eq!(before.delta(), after.delta());
        prop_assert_eq!(before.total_links(), after.total_links());
    }

    #[test]
    fn stats_are_route_direction_invariant(routes in arb_route_set(12)) {
        let forward = LinkStats::from_routes(&routes);
        let reversed: Vec<Route> = routes.iter().map(Route::reversed).collect();
        let backward = LinkStats::from_routes(&reversed);
        prop_assert_eq!(forward.p_max(), backward.p_max());
        prop_assert_eq!(forward.delta(), backward.delta());
        prop_assert_eq!(forward.suspect_link(), backward.suspect_link());
    }

    #[test]
    fn duplicating_the_set_preserves_relative_stats(routes in arb_route_set(10)) {
        let single = LinkStats::from_routes(&routes);
        let mut doubled = routes.clone();
        doubled.extend(routes.iter().cloned());
        let double = LinkStats::from_routes(&doubled);
        prop_assert!((single.p_max() - double.p_max()).abs() < 1e-12);
        prop_assert!((single.delta() - double.delta()).abs() < 1e-12);
        prop_assert_eq!(double.total_links(), 2 * single.total_links());
    }

    #[test]
    fn top_links_excluding_never_contains_excluded(routes in arb_route_set(15)) {
        let stats = LinkStats::from_routes(&routes);
        let exclude = [routes[0].src()];
        let top = stats.top_links_excluding(&exclude);
        // Either the fallback fired (all links touch the excluded node) or
        // no returned link touches it.
        let all_touch = stats.counts().all(|(l, _)| l.touches(exclude[0]));
        if !all_touch {
            for l in top {
                prop_assert!(!l.touches(exclude[0]), "{l} touches excluded");
            }
        }
    }

    #[test]
    fn pmf_masses_sum_to_one(samples in proptest::collection::vec(0.0f64..1.0, 1..200), bins in 2usize..40) {
        let pmf = Pmf::from_samples(bins, &samples);
        let sum: f64 = pmf.masses().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert_eq!(pmf.sample_count(), samples.len() as u64);
    }

    #[test]
    fn pmf_total_variation_is_a_metric_ish(
        a in proptest::collection::vec(0.0f64..1.0, 1..100),
        b in proptest::collection::vec(0.0f64..1.0, 1..100),
    ) {
        let pa = Pmf::from_samples(16, &a);
        let pb = Pmf::from_samples(16, &b);
        let d_ab = pa.total_variation(&pb);
        let d_ba = pb.total_variation(&pa);
        prop_assert!((d_ab - d_ba).abs() < 1e-12, "symmetry");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&d_ab), "bounded");
        prop_assert!(pa.total_variation(&pa) < 1e-12, "identity");
    }

    #[test]
    fn pmf_support_max_bounds_all_samples(samples in proptest::collection::vec(0.0f64..1.0, 1..100)) {
        let pmf = Pmf::from_samples(20, &samples);
        let support = pmf.support_max();
        for &s in &samples {
            prop_assert!(s <= support + 1e-12, "sample {s} beyond support {support}");
        }
    }

    #[test]
    fn forgetting_update_is_a_convex_combination(
        old in -10.0f64..10.0,
        new in -10.0f64..10.0,
        lambda in 0.0f64..1.0,
        beta in 0.0f64..1.0,
    ) {
        let v = forgetting_update(old, new, lambda, beta);
        let lo = old.min(new) - 1e-12;
        let hi = old.max(new) + 1e-12;
        prop_assert!((lo..=hi).contains(&v), "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn feature_stat_mean_between_min_and_max(samples in proptest::collection::vec(0.0f64..1.0, 1..50)) {
        let s = FeatureStat::from_samples(&samples);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        prop_assert!(s.mean >= min - 1e-12 && s.mean <= max + 1e-12);
        prop_assert!(s.std >= 0.0);
        prop_assert_eq!(s.max, max);
        prop_assert_eq!(s.n, samples.len());
    }

    #[test]
    fn lambda_is_bounded_and_monotone(z1 in -20.0f64..20.0, z2 in -20.0f64..20.0) {
        let d = SamDetector::default();
        let l1 = d.lambda_of_z(z1);
        let l2 = d.lambda_of_z(z2);
        prop_assert!((0.0..=1.0).contains(&l1));
        if z1 < z2 {
            prop_assert!(l1 >= l2, "λ must be non-increasing in z");
        }
    }
}
