//! Golden-scenario snapshot tests: the cluster and 6×6-grid wormhole
//! scenarios under one fixed fault plan must keep producing exactly the
//! same flight summary and detector verdict.
//!
//! Any engine, routing, attack, or fault-injection change that shifts a
//! single traced event or statistic fails here first, with a readable
//! field-level diff. When a change is *intentional*, regenerate the
//! snapshots and review the diff like any other code change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_scenarios
//! git diff tests/golden/
//! ```

use sam_experiments::flight::{record_flight, FlightOptions};
use sam_experiments::prelude::*;
use sam_faults::{ChurnKind, FaultPlan, JitterSpec, LossBurst};
use sam_flight::FlightSummary;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// The fixed fault plan both scenarios run under: a 15% loss burst
/// through the heart of the discovery, one mid-flood crash, and light
/// duplication/reordering jitter — every fault class at once.
fn golden_plan() -> FaultPlan {
    FaultPlan::none()
        .named("golden")
        .with_burst(LossBurst::window(2_000, 9_000, 0.15))
        .with_churn(6_000, 3, ChurnKind::Crash)
        .with_jitter(JitterSpec {
            dup_prob: 0.05,
            dup_delay_us: 250,
            reorder_prob: 0.05,
            reorder_delay_us: 400,
        })
}

/// Everything a snapshot pins: the full flight summary plus the
/// detector-facing statistics of the recorded run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct GoldenSnapshot {
    summary: FlightSummary,
    p_max: f64,
    delta: f64,
    suspect_link: Option<(u32, u32)>,
    anomalous: bool,
}

fn snapshot_of(topology: TopologyKind) -> GoldenSnapshot {
    let spec = ScenarioSpec::attacked(topology, manet_routing::ProtocolKind::Mr);
    let opts = FlightOptions {
        faults: Some(golden_plan()),
        ..FlightOptions::default()
    };
    let (recording, explanation) = record_flight(&spec, 0, &opts);
    GoldenSnapshot {
        summary: FlightSummary::from_recording(&recording),
        p_max: explanation.p_max,
        delta: explanation.delta,
        suspect_link: explanation.suspect_link,
        anomalous: explanation.anomalous,
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

/// Compare against (or with `UPDATE_GOLDEN=1`, rewrite) the stored
/// snapshot. Floats are held to 1e-9 — tight enough to pin behaviour,
/// loose enough to survive JSON round-tripping.
fn check_golden(name: &str, actual: &GoldenSnapshot) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let json = serde_json::to_string_pretty(actual).unwrap();
        std::fs::write(&path, json).unwrap();
        eprintln!("golden: rewrote {}", path.display());
        return;
    }
    let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); generate it with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let expected: GoldenSnapshot =
        serde_json::from_str(&stored).unwrap_or_else(|e| panic!("corrupt {}: {e}", path.display()));
    assert_eq!(
        expected.summary, actual.summary,
        "flight summary drifted for {name}; if intended, rerun with UPDATE_GOLDEN=1"
    );
    assert!(
        (expected.p_max - actual.p_max).abs() < 1e-9,
        "{name}: p_max {} != {}",
        actual.p_max,
        expected.p_max
    );
    assert!(
        (expected.delta - actual.delta).abs() < 1e-9,
        "{name}: delta {} != {}",
        actual.delta,
        expected.delta
    );
    assert_eq!(expected.suspect_link, actual.suspect_link, "{name}");
    assert_eq!(expected.anomalous, actual.anomalous, "{name}");
}

#[test]
fn golden_cluster1_under_fixed_fault_plan() {
    let snap = snapshot_of(TopologyKind::cluster1());
    // Sanity before comparing: the faulted run still detects the
    // cluster wormhole and records fault-channel evidence.
    assert!(snap.anomalous, "cluster wormhole must stay detectable");
    assert!(snap.suspect_link.is_some());
    assert!(snap.summary.faults > 0, "fault plan left no trace");
    check_golden("cluster1_faulted", &snap);
}

#[test]
fn golden_grid6x6_under_fixed_fault_plan() {
    let snap = snapshot_of(TopologyKind::uniform6x6());
    assert!(snap.summary.faults > 0, "fault plan left no trace");
    check_golden("grid6x6_faulted", &snap);
}

#[test]
fn golden_random_disc_under_fixed_fault_plan() {
    // The Fig. 9 random-disc placement: seeded, so the generated
    // topology — and therefore the whole snapshot — is reproducible.
    let snap = snapshot_of(TopologyKind::Random);
    assert!(snap.summary.faults > 0, "fault plan left no trace");
    check_golden("random_disc_faulted", &snap);
}
