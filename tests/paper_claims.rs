//! One test per table/figure of the paper, asserting the *shape* each
//! artifact must reproduce (who wins, by roughly what factor, where the
//! crossovers fall). These are the repository's reproduction contract;
//! EXPERIMENTS.md records the measured numbers.

use wormhole_sam::prelude::*;

const RUNS: u64 = 6;

fn mean(records: &[RunRecord], f: impl Fn(&RunRecord) -> f64) -> f64 {
    mean_of(records, f)
}

#[test]
fn table1_cluster_fully_captured_uniform_partially() {
    let cluster_mr = run_series(
        &ScenarioSpec::attacked(TopologyKind::cluster1(), ProtocolKind::Mr),
        RUNS,
    );
    let cluster_dsr = run_series(
        &ScenarioSpec::attacked(TopologyKind::cluster1(), ProtocolKind::Dsr),
        RUNS,
    );
    let uniform_mr = run_series(
        &ScenarioSpec::attacked(TopologyKind::uniform6x6(), ProtocolKind::Mr),
        RUNS,
    );
    let uniform_dsr = run_series(
        &ScenarioSpec::attacked(TopologyKind::uniform6x6(), ProtocolKind::Dsr),
        RUNS,
    );
    // "all routes are affected for both MR and DSR in cluster topology!"
    for r in cluster_mr.iter().chain(&cluster_dsr) {
        assert!(
            r.affected > 0.99,
            "cluster run {} affected only {:.2}",
            r.run,
            r.affected
        );
    }
    // "MR may perform better than DSR in uniform topology" — and both hit.
    let mr = mean(&uniform_mr, |r| r.affected);
    let dsr = mean(&uniform_dsr, |r| r.affected);
    assert!(mr > 0.1, "uniform MR affected {mr:.2}");
    assert!(dsr > 0.5, "uniform DSR affected {dsr:.2}");
    assert!(
        mr <= dsr + 1e-9,
        "MR {mr:.2} should not exceed DSR {dsr:.2}"
    );
}

#[test]
fn table2_mr_overhead_at_least_twice_dsr() {
    for topology in [TopologyKind::cluster1(), TopologyKind::uniform6x6()] {
        let mr = run_series(&ScenarioSpec::attacked(topology, ProtocolKind::Mr), RUNS);
        let dsr = run_series(&ScenarioSpec::attacked(topology, ProtocolKind::Dsr), RUNS);
        let ratio = mean(&mr, |r| r.overhead as f64) / mean(&dsr, |r| r.overhead as f64);
        assert!(
            ratio >= 2.0,
            "{}: MR/DSR overhead ratio {ratio:.2} below the paper's 'more than twice'",
            topology.label()
        );
    }
}

#[test]
fn fig5_attacked_pmf_has_isolated_high_frequency_outlier() {
    let normal = ScenarioSpec::normal(TopologyKind::cluster1(), ProtocolKind::Mr);
    let attacked = normal.with_wormholes(1);
    // The figure shows one *typical* discovery; a single seed can draw an
    // atypical one, so assert the shape across a short series.
    let mut p_max_n = 0.0;
    let mut p_max_a = 0.0;
    let mut isolated = 0u64;
    for run in 0..RUNS {
        let (rec_n, _) = run_once_with_routes(&normal, run);
        let (rec_a, routes_a) = run_once_with_routes(&attacked, run);
        p_max_n += rec_n.p_max;
        p_max_a += rec_a.p_max;
        // "the link with the highest relative frequency locates far apart
        // from other links". Links tied at the maximum are one shared
        // capture chain through the tunnel — a single PMF outlier, not
        // competing peaks — so measure the gap to the best frequency
        // *below* the outlier.
        let stats = LinkStats::from_routes(&routes_a);
        let (n_max, _) = stats.top_two();
        let n_next = stats
            .counts()
            .map(|(_, c)| c)
            .filter(|&c| c < n_max)
            .max()
            .unwrap_or(0);
        // Paper's own gap: normal tops out near 9%, attacked above 15% —
        // i.e. the runner-up sits below ~0.7 of the outlier.
        if 10 * n_next <= 7 * n_max {
            isolated += 1;
        }
    }
    // Paper: "the highest relative frequency is 9% in [normal], whereas
    // [attacked] more than 15%". Shape: attacked max well above normal max.
    assert!(p_max_a > 1.5 * p_max_n, "{p_max_a} vs {p_max_n}");
    assert!(
        2 * isolated > RUNS,
        "attack outlier isolated in only {isolated}/{RUNS} runs"
    );
}

#[test]
fn fig6_7_features_separate_on_cluster() {
    let s = PairedSeries::collect_one_wormhole(TopologyKind::cluster1(), ProtocolKind::Mr, RUNS);
    assert!(
        s.separation(|r| r.p_max) > 0.05,
        "p_max sep {}",
        s.separation(|r| r.p_max)
    );
    assert!(
        s.separation(|r| r.delta) > 0.0,
        "Δ sep {}",
        s.separation(|r| r.delta)
    );
}

#[test]
fn fig8_long_uniform_link_separates_where_short_one_is_weak() {
    let short =
        PairedSeries::collect_one_wormhole(TopologyKind::uniform6x6(), ProtocolKind::Mr, RUNS);
    let long =
        PairedSeries::collect_one_wormhole(TopologyKind::uniform10x6(), ProtocolKind::Mr, RUNS);
    assert!(
        long.separation(|r| r.p_max) > short.separation(|r| r.p_max),
        "long {} ≤ short {}",
        long.separation(|r| r.p_max),
        short.separation(|r| r.p_max)
    );
    assert!(long.separation(|r| r.p_max) > 0.1);
}

#[test]
fn fig10_random_topologies_separate_p_max() {
    let s = PairedSeries::collect_one_wormhole(TopologyKind::Random, ProtocolKind::Mr, RUNS);
    assert!(
        s.separation(|r| r.p_max) > 0.05,
        "sep {}",
        s.separation(|r| r.p_max)
    );
    // Every attacked run individually exceeds its paired normal run —
    // Fig. 10's per-run picture.
    let mut wins = 0;
    for (n, a) in s.normal.iter().zip(&s.attacked) {
        if a.p_max > n.p_max {
            wins += 1;
        }
    }
    assert!(
        wins as f64 >= 0.8 * RUNS as f64,
        "only {wins}/{RUNS} runs separate"
    );
}

#[test]
fn fig11_12_both_tiers_separate() {
    for tier in [TopologyKind::cluster1(), TopologyKind::cluster2()] {
        let s = PairedSeries::collect_one_wormhole(tier, ProtocolKind::Mr, RUNS);
        assert!(
            s.separation(|r| r.p_max) > 0.02,
            "{}: p_max sep {}",
            s.label,
            s.separation(|r| r.p_max)
        );
    }
}

#[test]
fn fig13_14_p_max_carries_over_to_dsr_delta_does_not() {
    let mr = PairedSeries::collect_one_wormhole(TopologyKind::cluster1(), ProtocolKind::Mr, RUNS);
    let dsr = PairedSeries::collect_one_wormhole(TopologyKind::cluster1(), ProtocolKind::Dsr, RUNS);
    // Fig. 14: p_max separates for both protocols.
    assert!(mr.separation(|r| r.p_max) > 0.03);
    assert!(dsr.separation(|r| r.p_max) > 0.03);
    // Fig. 13: Δ behaves differently under DSR (single-path routing gives
    // it far less signal than under MR).
    assert!(
        dsr.separation(|r| r.delta) < mr.separation(|r| r.delta) + 1e-9,
        "DSR Δ sep {} vs MR {}",
        dsr.separation(|r| r.delta),
        mr.separation(|r| r.delta)
    );
}

#[test]
fn fig15_multi_wormhole_raises_p_max_and_its_variance() {
    let base = ScenarioSpec::normal(TopologyKind::uniform10x6(), ProtocolKind::Mr);
    let none = run_series(&base, RUNS);
    let one = run_series(&base.with_wormholes(1), RUNS);
    let two = run_series(&base.with_wormholes(2), RUNS);
    let m = |v: &[RunRecord]| mean(v, |r| r.p_max);
    let var = |v: &[RunRecord]| {
        let mu = m(v);
        v.iter().map(|r| (r.p_max - mu).powi(2)).sum::<f64>() / v.len() as f64
    };
    // "p_max is much higher in both attacked networks than … normal."
    assert!(
        m(&one) > 1.5 * m(&none),
        "one {} vs none {}",
        m(&one),
        m(&none)
    );
    assert!(
        m(&two) > 1.5 * m(&none),
        "two {} vs none {}",
        m(&two),
        m(&none)
    );
    // "the variance of p_max becomes bigger as the number of wormholes
    // increases."
    assert!(
        var(&two) > var(&one),
        "variance two {} vs one {}",
        var(&two),
        var(&one)
    );
}

#[test]
fn discussion_attack_ineffective_when_range_rivals_tunnel() {
    // "If the node transmission range grows large enough that comparable
    // to the tunneled link between the two attackers, then wormhole attack
    // is no longer effective." A tiny grid at a huge tier: the tunnel
    // spans ~1 hop, so capture collapses compared to the long-tunnel case.
    let tiny = TopologyKind::Uniform {
        cols: 4,
        rows: 6,
        tier: 2,
    };
    let long = TopologyKind::uniform10x6();
    let tiny_hit = run_series(&ScenarioSpec::attacked(tiny, ProtocolKind::Mr), RUNS);
    let long_hit = run_series(&ScenarioSpec::attacked(long, ProtocolKind::Mr), RUNS);
    assert!(
        mean(&tiny_hit, |r| r.affected) < mean(&long_hit, |r| r.affected),
        "short-range attack should capture less: {:.2} vs {:.2}",
        mean(&tiny_hit, |r| r.affected),
        mean(&long_hit, |r| r.affected)
    );
}
