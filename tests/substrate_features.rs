//! Integration tests for the supporting substrate features: event
//! tracing, mobility perturbation, the route cache, and heterogeneous
//! node speeds.

use wormhole_sam::prelude::*;
use wormhole_sam::routing::packet::RoutingMsg;
use wormhole_sam::sim::engine::Network;

#[test]
fn trace_records_the_flood_wavefront() {
    let plan = uniform_grid(6, 6, 1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[0];
    let mut net: Network<RoutingMsg> =
        Network::new(plan.topology.clone(), LatencyModel::deterministic(1e-3), 1);
    net.enable_trace(100_000);
    let mut nodes: Vec<RouterNode> = plan
        .topology
        .nodes()
        .map(|id| RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr)))
        .collect();
    nodes[src.idx()].queue_discovery(dst);
    net.schedule_timer(src, SimDuration::ZERO, timer::START_DISCOVERY);
    net.run(&mut nodes, SimTime::MAX);

    let trace = net.trace().expect("tracing enabled");
    assert!(trace.entries().len() > 50, "flood should generate traffic");
    assert_eq!(trace.tunnel_deliveries(), 0, "no attackers wired");

    // With deterministic latency the first-delivery times are exactly
    // hop-distance milliseconds.
    let d = bfs_hops(&plan.topology, src);
    for node in [dst, plan.src_pool[3], plan.dst_pool[5]] {
        let first = trace
            .first_delivery_at(node)
            .expect("every node hears the flood");
        let hops = d[node.idx()].expect("connected") as u64;
        assert_eq!(
            first.as_micros(),
            hops * 1_000,
            "wavefront at {node} off: {first:?} vs {hops} hops"
        );
    }
}

#[test]
fn trace_counts_tunnel_activity_under_attack() {
    let plan = two_cluster(1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[0];
    let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::default());
    let mut net: Network<RoutingMsg> =
        Network::new(plan.topology.clone(), LatencyModel::default(), 2);
    net.enable_trace(200_000);
    let mut nodes: Vec<AttackNode> = plan
        .topology
        .nodes()
        .map(|id| wiring.build(RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr))))
        .collect();
    nodes[src.idx()].router_mut().queue_discovery(dst);
    net.schedule_timer(src, SimDuration::ZERO, timer::START_DISCOVERY);
    net.run(&mut nodes, SimTime::MAX);
    let trace = net.take_trace().expect("tracing enabled");
    assert!(
        trace.tunnel_deliveries() > 0,
        "the wormhole should have fired"
    );
}

#[test]
fn mobility_drift_keeps_sam_working_at_small_radii() {
    let base = two_cluster(1);
    let drifted = base.perturbed(0.1, 7).expect("small drift stays connected");
    let src = drifted.src_pool[1];
    let dst = drifted.dst_pool[1];
    let out = run_wormholed_discovery(
        &drifted,
        ProtocolKind::Mr,
        WormholeConfig::default(),
        src,
        dst,
        3,
    );
    assert!(!out.routes.is_empty());
    let frac = affected_fraction(&out.routes, drifted.attacker_pairs[0]);
    assert!(frac > 0.8, "drifted cluster capture {frac}");
}

#[test]
fn route_cache_feeds_probing_between_discoveries() {
    // A source caches the routes it got via RREP, then probes from cache
    // without a new discovery; an isolation notice invalidates the
    // attacker's routes.
    let plan = two_cluster(1);
    let src = plan.src_pool[2];
    let dst = plan.dst_pool[2];
    let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::default());
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        11,
    );
    let out = session.discover(src, dst, DEFAULT_MAX_WAIT);
    assert!(!out.source_routes.is_empty());

    let now = session.network().now();
    let mut cache = RouteCache::new(16, SimDuration::from_millis(60_000));
    for r in &out.source_routes {
        cache.insert(r.clone(), now);
    }
    let cached = cache.lookup(dst, now).expect("route cached").clone();
    let probe = session.probe(
        &cached,
        3,
        SimDuration::from_millis(10),
        SimDuration::from_millis(500),
    );
    assert_eq!(probe.acked, 3, "cached route works (pure relay wormhole)");

    // The IDS isolates the attacker pair: every cached route through
    // either endpoint is dropped.
    let pair = plan.attacker_pairs[0];
    cache.invalidate_node(pair.a);
    cache.invalidate_node(pair.b);
    // In the fully captured cluster nothing survives.
    assert!(
        cache.lookup(dst, now).is_none(),
        "all cached routes crossed the wormhole"
    );
}

#[test]
fn latency_scale_speeds_up_first_arrival() {
    // Same topology, same seed: a sped-up source floods faster.
    let plan = uniform_grid(6, 6, 1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[0];

    let first_arrival = |scale: f64| -> u64 {
        let mut net: Network<RoutingMsg> =
            Network::new(plan.topology.clone(), LatencyModel::deterministic(1e-3), 5);
        net.enable_trace(100_000);
        let mut nodes: Vec<RouterNode> = plan
            .topology
            .nodes()
            .map(|id| {
                let mut r = RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr));
                r.set_latency_scale(scale);
                r
            })
            .collect();
        nodes[src.idx()].queue_discovery(dst);
        net.schedule_timer(src, SimDuration::ZERO, timer::START_DISCOVERY);
        net.run(&mut nodes, SimTime::MAX);
        net.trace()
            .unwrap()
            .first_delivery_at(dst)
            .expect("reached")
            .as_micros()
    };

    let slow = first_arrival(1.0);
    let fast = first_arrival(0.25);
    assert!(fast < slow, "fast {fast} vs slow {slow}");
    assert_eq!(fast, slow / 4, "deterministic latencies scale exactly");
}
