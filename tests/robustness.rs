//! Robustness: nodes must shrug off stray, malformed, or misdirected
//! messages without panicking, and concurrent traffic must not corrupt
//! per-discovery state.

use wormhole_sam::prelude::*;
use wormhole_sam::routing::packet::RerrPkt;
use wormhole_sam::sim::engine::Network;
use wormhole_sam::sim::event::Channel;

fn grid_net(seed: u64) -> (NetworkPlan, Network<RoutingMsg>, Vec<RouterNode>) {
    let plan = uniform_grid(5, 5, 1);
    let net = Network::new(plan.topology.clone(), LatencyModel::default(), seed);
    let nodes: Vec<RouterNode> = plan
        .topology
        .nodes()
        .map(|id| RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr)))
        .collect();
    (plan, net, nodes)
}

fn route(ids: &[u32]) -> Route {
    Route::new(ids.iter().map(|&i| NodeId(i)).collect()).unwrap()
}

#[test]
fn stray_messages_do_not_panic_or_loop() {
    let (_plan, mut net, mut nodes) = grid_net(1);
    let stray = vec![
        // RREP for a route the receiver is not on.
        RoutingMsg::Rrep(Rrep {
            id: RreqId {
                src: NodeId(20),
                seq: 9,
            },
            route: route(&[20, 21, 22]),
        }),
        // Data whose route does not include the receiver.
        RoutingMsg::Data(DataPkt {
            route: route(&[20, 21, 22]),
            seq: 1,
        }),
        // ACK addressed elsewhere.
        RoutingMsg::Ack(AckPkt {
            route: route(&[22, 21, 20]),
            seq: 1,
        }),
        // RERR for somebody else's route.
        RoutingMsg::Rerr(RerrPkt {
            route: route(&[20, 21, 22]),
            broken_from: NodeId(21),
            broken_to: NodeId(22),
        }),
        // Data where the receiver IS the penultimate hop but the next hop
        // is unreachable radio-wise.
        RoutingMsg::Data(DataPkt {
            route: route(&[0, 12, 24]),
            seq: 2,
        }),
    ];
    for (i, msg) in stray.into_iter().enumerate() {
        net.inject(
            SimDuration::from_micros(i as u64),
            NodeId(12),
            NodeId(7),
            Channel::Unicast,
            msg,
        );
    }
    let stats = net.run(&mut nodes, SimTime::MAX);
    assert!(!stats.truncated);
    // The run terminates quickly: stray traffic must not self-amplify.
    assert!(
        stats.events_processed < 50,
        "{} events",
        stats.events_processed
    );
}

#[test]
fn timer_with_unknown_key_is_ignored() {
    let (_plan, mut net, mut nodes) = grid_net(2);
    net.schedule_timer(NodeId(3), SimDuration::ZERO, 0xDEAD);
    let stats = net.run(&mut nodes, SimTime::MAX);
    assert_eq!(stats.events_processed, 1);
}

#[test]
fn concurrent_discoveries_from_different_sources_stay_separate() {
    let plan = uniform_grid(6, 6, 1);
    let mut session = Session::new(&plan, LatencyModel::default(), 7, |id| {
        RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr))
    });
    // Two discoveries back to back over the same network: different
    // sources, different destinations.
    let s1 = plan.src_pool[0];
    let d1 = plan.dst_pool[0];
    let s2 = plan.src_pool[4];
    let d2 = plan.dst_pool[4];
    let out1 = session.discover(s1, d1, DEFAULT_MAX_WAIT);
    let out2 = session.discover(s2, d2, DEFAULT_MAX_WAIT);
    assert!(!out1.routes.is_empty() && !out2.routes.is_empty());
    for r in &out1.routes {
        assert_eq!((r.src(), r.dst()), (s1, d1));
    }
    for r in &out2.routes {
        assert_eq!((r.src(), r.dst()), (s2, d2));
    }
    // Ids differ; destination state kept both finalized sets apart.
    assert_ne!(out1.id, out2.id);
}

#[test]
fn repeat_discoveries_same_pair_get_fresh_ids_and_routes() {
    let plan = uniform_grid(6, 6, 1);
    let mut session = Session::new(&plan, LatencyModel::default(), 8, |id| {
        RouterNode::new(id, RouterConfig::new(ProtocolKind::Mr))
    });
    let src = plan.src_pool[1];
    let dst = plan.dst_pool[1];
    let a = session.discover(src, dst, DEFAULT_MAX_WAIT);
    let b = session.discover(src, dst, DEFAULT_MAX_WAIT);
    assert_ne!(a.id.seq, b.id.seq);
    assert!(!a.routes.is_empty() && !b.routes.is_empty());
    // Second discovery's route set is independently collected (jitter
    // differs as the RNG stream advanced).
    let dst_router = session.node(dst);
    assert_eq!(dst_router.router().finalized().len(), 2);
}

#[test]
fn isolated_nodes_are_inert() {
    let plan = uniform_grid(6, 6, 1);
    let middle = grid_node(6, 2, 2);
    let wiring = AttackWiring::none().with_isolated(middle);
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        9,
    );
    let out = session.discover(plan.src_pool[2], plan.dst_pool[2], DEFAULT_MAX_WAIT);
    assert!(!out.routes.is_empty());
    for r in &out.routes {
        assert!(!r.contains(middle), "isolated node on route {r}");
    }
    assert!(session.node(middle).is_isolated());
    assert!(!session.node(middle).is_attacker());
}
