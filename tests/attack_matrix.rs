//! Sanity matrix: every protocol × topology × wormhole mode combination
//! must produce structurally valid results — routes that are real paths
//! (modulo tunneled/replayed hops), non-truncated runs, sane counters.

use wormhole_sam::prelude::*;

fn check_routes(plan: &NetworkPlan, routes: &[Route], src: NodeId, dst: NodeId, allow_gaps: bool) {
    for r in routes {
        assert_eq!(r.src(), src, "{r}");
        assert_eq!(r.dst(), dst, "{r}");
        for w in r.nodes().windows(2) {
            let adjacent = plan.topology.are_neighbors(w[0], w[1]);
            if !adjacent {
                assert!(
                    allow_gaps,
                    "non-adjacent hop {}-{} in {r} without an active tunnel",
                    w[0], w[1]
                );
                // Gaps may only involve wormhole machinery: either an
                // attacker endpoint (participation) or a replay span
                // bridging two attacker neighbourhoods (hidden).
                let attackers = plan.attacker_nodes();
                let touches_attacker = attackers.contains(&w[0]) || attackers.contains(&w[1]);
                let spans_neighbourhoods = attackers
                    .iter()
                    .any(|&x| plan.topology.are_neighbors(w[0], x))
                    && attackers
                        .iter()
                        .any(|&x| plan.topology.are_neighbors(w[1], x));
                assert!(
                    touches_attacker || spans_neighbourhoods,
                    "gap {}-{} unrelated to attackers in {r}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn matrix_protocols_by_topologies_normal() {
    let protocols = [
        ProtocolKind::Dsr,
        ProtocolKind::Mr,
        ProtocolKind::Smr,
        ProtocolKind::Aomdv,
    ];
    let topologies = [
        TopologyKind::cluster1(),
        TopologyKind::cluster2(),
        TopologyKind::uniform6x6(),
        TopologyKind::uniform10x6(),
        TopologyKind::Random,
    ];
    for topology in topologies {
        let plan = topology.build(1);
        let src = plan.src_pool[0];
        let dst = plan.dst_pool[0];
        for protocol in protocols {
            let out = run_discovery(&plan, protocol, src, dst, 11);
            assert!(!out.truncated, "{protocol}/{}", topology.label());
            assert!(
                !out.routes.is_empty(),
                "{protocol}/{}: no routes",
                topology.label()
            );
            check_routes(&plan, &out.routes, src, dst, false);
            assert!(out.overhead > 0);
            // Multipath protocols return selected routes to the source.
            if protocol.is_multipath() {
                assert!(
                    !out.source_routes.is_empty(),
                    "{protocol}/{}: source got no RREPs",
                    topology.label()
                );
                for r in &out.source_routes {
                    assert!(
                        out.routes.contains(r),
                        "RREP route not from the collected set"
                    );
                }
            }
        }
    }
}

#[test]
fn matrix_wormhole_modes_by_topologies() {
    let modes = [
        ("participation", WormholeConfig::default()),
        ("hidden", WormholeConfig::hidden()),
        ("blackholing", WormholeConfig::blackholing()),
    ];
    let topologies = [
        TopologyKind::cluster1(),
        TopologyKind::uniform10x6(),
        TopologyKind::Random,
    ];
    for topology in topologies {
        let plan = topology.build(2);
        let src = plan.src_pool[0];
        let dst = plan.dst_pool[0];
        for (name, cfg) in modes {
            let out = run_wormholed_discovery(&plan, ProtocolKind::Mr, cfg, src, dst, 13);
            assert!(!out.truncated, "{name}/{}", topology.label());
            assert!(
                !out.routes.is_empty(),
                "{name}/{}: no routes",
                topology.label()
            );
            check_routes(&plan, &out.routes, src, dst, true);
            if cfg.mode == WormholeMode::Hidden {
                // Hidden attackers never appear on routes.
                let attackers = plan.attacker_nodes();
                for r in &out.routes {
                    for &a in &attackers {
                        assert!(!r.contains(a), "{name}: attacker {a} on route {r}");
                    }
                }
            }
        }
    }
}

#[test]
fn two_wormholes_on_every_growable_topology() {
    for topology in [
        TopologyKind::cluster1(),
        TopologyKind::uniform6x6(),
        TopologyKind::uniform10x6(),
    ] {
        let spec = ScenarioSpec::attacked(topology, ProtocolKind::Mr).with_wormholes(2);
        let plan = build_plan(&spec, 0);
        assert_eq!(plan.attacker_pairs.len(), 2, "{}", topology.label());
        plan.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", topology.label()));
        let rec = run_once(&spec, 0);
        assert!(rec.n_routes > 0, "{}", topology.label());
    }
}

#[test]
fn overhead_ordering_dsr_lowest_mr_highest() {
    // The duplicate-forwarding hierarchy translates directly into
    // overhead: DSR ≤ SMR ≤ MR (AOMDV ≈ DSR at the RREQ level).
    let plan = two_cluster(1);
    let src = plan.src_pool[2];
    let dst = plan.dst_pool[2];
    let overhead = |p: ProtocolKind| run_discovery(&plan, p, src, dst, 17).overhead;
    let dsr = overhead(ProtocolKind::Dsr);
    let smr = overhead(ProtocolKind::Smr);
    let mr = overhead(ProtocolKind::Mr);
    assert!(dsr <= smr, "DSR {dsr} vs SMR {smr}");
    assert!(smr <= mr, "SMR {smr} vs MR {mr}");
}
