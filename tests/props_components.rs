//! Property-based tests for the supporting components: the route cache,
//! the coordination fusion rules, and topology perturbation.

use proptest::prelude::*;
use wormhole_sam::prelude::*;

fn arb_route(pool: u32, max_len: usize) -> impl Strategy<Value = Route> {
    proptest::sample::subsequence((0..pool).collect::<Vec<u32>>(), 2..=max_len.max(2))
        .prop_shuffle()
        .prop_map(|ids| Route::new(ids.into_iter().map(NodeId).collect()).expect("loop-free"))
}

proptest! {
    #[test]
    fn cache_never_exceeds_capacity(
        routes in proptest::collection::vec(arb_route(16, 6), 1..40),
        capacity in 1usize..8,
    ) {
        let mut cache = RouteCache::new(capacity, SimDuration::from_millis(1000));
        for (i, r) in routes.iter().enumerate() {
            cache.insert(r.clone(), SimTime::from_micros(i as u64));
            prop_assert!(cache.len() <= capacity);
        }
    }

    #[test]
    fn cache_lookup_only_returns_routes_to_the_destination(
        routes in proptest::collection::vec(arb_route(16, 6), 1..20),
    ) {
        let mut cache = RouteCache::new(64, SimDuration::from_millis(1000));
        let now = SimTime::from_micros(10);
        for r in &routes {
            cache.insert(r.clone(), now);
        }
        for dst in (0..16).map(NodeId) {
            if let Some(r) = cache.lookup(dst, now) {
                prop_assert_eq!(r.dst(), dst);
                // And it is the shortest cached route to dst.
                let min = routes
                    .iter()
                    .filter(|x| x.dst() == dst)
                    .map(Route::hops)
                    .min()
                    .expect("found one");
                prop_assert_eq!(r.hops(), min);
            }
        }
    }

    #[test]
    fn cache_invalidate_node_removes_exactly_the_matching_routes(
        routes in proptest::collection::vec(arb_route(12, 6), 1..20),
        victim in 0u32..12,
    ) {
        let mut cache = RouteCache::new(64, SimDuration::from_millis(1000));
        let now = SimTime::from_micros(0);
        let mut unique = Vec::new();
        for r in routes {
            if !unique.contains(&r) {
                unique.push(r.clone());
                cache.insert(r, now);
            }
        }
        let expected_removed = unique.iter().filter(|r| r.contains(NodeId(victim))).count();
        let removed = cache.invalidate_node(NodeId(victim));
        prop_assert_eq!(removed, expected_removed);
        prop_assert_eq!(cache.len(), unique.len() - expected_removed);
    }

    #[test]
    fn coordinator_confidence_is_additive_and_order_free(
        lambdas in proptest::collection::vec(0.0f64..1.0, 1..20),
    ) {
        let report = |l: f64| AttackReport {
            suspect_link: (NodeId(1), NodeId(2)),
            lambda: l,
            p_max: 0.2,
            delta: 0.3,
            probe_ack_ratio: 0.0,
            paths_tested: 1,
            isolate: vec![NodeId(1), NodeId(2)],
        };
        let mut forward = GlobalCoordinator::new();
        for &l in &lambdas {
            forward.ingest(&report(l));
        }
        let mut backward = GlobalCoordinator::new();
        for &l in lambdas.iter().rev() {
            backward.ingest(&report(l));
        }
        let expected: f64 = lambdas.iter().map(|l| 1.0 - l).sum();
        let fv = forward.link_verdicts();
        let bv = backward.link_verdicts();
        prop_assert!((fv[0].confidence - expected).abs() < 1e-9);
        prop_assert!((fv[0].confidence - bv[0].confidence).abs() < 1e-9);
        prop_assert_eq!(fv[0].reports, lambdas.len());
    }

    #[test]
    fn coordinator_node_mass_bounds_link_mass(
        pairs in proptest::collection::vec((0u32..8, 0u32..8), 1..20),
    ) {
        let mut c = GlobalCoordinator::new();
        let mut total = 0.0;
        for (a, b) in pairs {
            if a == b {
                continue;
            }
            c.ingest(&AttackReport {
                suspect_link: (NodeId(a), NodeId(b)),
                lambda: 0.5,
                p_max: 0.2,
                delta: 0.3,
                probe_ack_ratio: 0.0,
                paths_tested: 1,
                isolate: vec![],
            });
            total += 0.5;
        }
        // Every unit of link confidence appears on exactly two nodes.
        let node_total: f64 = c.node_verdicts().iter().map(|v| v.confidence).sum();
        prop_assert!((node_total - 2.0 * total).abs() < 1e-9);
    }

    #[test]
    fn perturbation_moves_no_node_beyond_radius(
        radius in 0.01f64..0.25,
        seed in 0u64..20,
    ) {
        let plan = uniform_grid(6, 6, 1);
        if let Some(p) = plan.perturbed(radius, seed) {
            for (a, b) in p.topology.positions().iter().zip(plan.topology.positions()) {
                let d = a.dist(*b);
                // Per-axis bound radius ⇒ Euclidean bound radius·√2.
                prop_assert!(d <= radius * std::f64::consts::SQRT_2 + 1e-9, "moved {d}");
            }
            prop_assert_eq!(p.attacker_pairs, plan.attacker_pairs);
        }
    }

    #[test]
    fn probe_outcome_ratio_is_consistent(sent in 0u32..100, acked_raw in 0u32..100) {
        let acked = acked_raw.min(sent);
        let o = ProbeOutcome { sent, acked };
        let r = o.ack_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
        if sent > 0 {
            prop_assert!((r - f64::from(acked) / f64::from(sent)).abs() < 1e-12);
        } else {
            prop_assert_eq!(r, 0.0);
        }
    }
}
