//! Reproducibility contract: every layer of the stack is a pure function
//! of its seed. This is what makes the tables in EXPERIMENTS.md
//! reviewable — anyone can regenerate them bit-for-bit.

use wormhole_sam::prelude::*;

#[test]
fn topologies_are_seed_deterministic() {
    for seed in [0u64, 1, 42] {
        let a = random_topology(seed);
        let b = random_topology(seed);
        assert_eq!(a.topology.positions(), b.topology.positions());
        assert_eq!(a.src_pool, b.src_pool);
        assert_eq!(a.dst_pool, b.dst_pool);
    }
}

#[test]
fn discoveries_are_seed_deterministic_across_protocols() {
    let plan = uniform_grid(6, 6, 1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[0];
    for proto in [
        ProtocolKind::Dsr,
        ProtocolKind::Mr,
        ProtocolKind::Smr,
        ProtocolKind::Aomdv,
    ] {
        let a = run_discovery(&plan, proto, src, dst, 5);
        let b = run_discovery(&plan, proto, src, dst, 5);
        assert_eq!(a.routes, b.routes, "{proto}");
        assert_eq!(a.overhead, b.overhead, "{proto}");
        assert_eq!(a.events, b.events, "{proto}");
    }
}

#[test]
fn attacked_discoveries_are_seed_deterministic() {
    let plan = two_cluster(1);
    let src = plan.src_pool[4];
    let dst = plan.dst_pool[4];
    for cfg in [
        WormholeConfig::default(),
        WormholeConfig::hidden(),
        WormholeConfig::blackholing(),
    ] {
        let a = run_wormholed_discovery(&plan, ProtocolKind::Mr, cfg, src, dst, 9);
        let b = run_wormholed_discovery(&plan, ProtocolKind::Mr, cfg, src, dst, 9);
        assert_eq!(a.routes, b.routes);
        assert_eq!(a.overhead, b.overhead);
    }
}

#[test]
fn different_seeds_differ() {
    let plan = uniform_grid(6, 6, 1);
    let src = plan.src_pool[1];
    let dst = plan.dst_pool[1];
    let outs: Vec<_> = (0..8)
        .map(|seed| run_discovery(&plan, ProtocolKind::Mr, src, dst, seed))
        .collect();
    let distinct = outs
        .iter()
        .map(|o| o.routes.clone())
        .collect::<std::collections::HashSet<_>>()
        .len();
    assert!(distinct >= 6, "only {distinct}/8 distinct route sets");
}

#[test]
fn run_series_matches_sequential_run_once() {
    let spec = ScenarioSpec::attacked(TopologyKind::uniform6x6(), ProtocolKind::Mr);
    let parallel = run_series(&spec, 5);
    for (i, rec) in parallel.iter().enumerate() {
        let sequential = run_once(&spec, i as u64);
        assert_eq!(rec.p_max, sequential.p_max, "run {i}");
        assert_eq!(rec.overhead, sequential.overhead, "run {i}");
        assert_eq!(rec.n_routes, sequential.n_routes, "run {i}");
    }
}

#[test]
fn experiment_tables_are_reproducible() {
    // Representative cheap experiments regenerate identically.
    for id in ["fig9", "fig5"] {
        let a = run_experiment(id, 2).unwrap();
        let b = run_experiment(id, 2).unwrap();
        assert_eq!(a.len(), b.len());
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.rows, tb.rows, "{id}");
        }
    }
}

#[test]
fn detector_is_a_pure_function_of_its_inputs() {
    let plan = two_cluster(1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[0];
    let sets: Vec<Vec<Route>> = (0..6)
        .map(|s| {
            run_attacked_discovery(&plan, ProtocolKind::Mr, &AttackWiring::none(), src, dst, s)
                .routes
        })
        .collect();
    let profile = NormalProfile::train(&sets, 20);
    let live = run_wormholed_discovery(
        &plan,
        ProtocolKind::Mr,
        WormholeConfig::default(),
        src,
        dst,
        50,
    )
    .routes;
    let d = SamDetector::default();
    let a = d.analyze(&live, &profile);
    let b = d.analyze(&live, &profile);
    assert_eq!(a.lambda, b.lambda);
    assert_eq!(a.suspect_link, b.suspect_link);
    assert_eq!(a.anomalous, b.anomalous);
}
