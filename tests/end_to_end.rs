//! Cross-crate integration tests: the full pipeline from topology
//! generation through discovery, attack, statistics, detection, probe
//! testing, and response — the way a deployment would use the library.

use wormhole_sam::prelude::*;

/// Probe transport over a live session.
struct Live<'a>(&'a mut Session<AttackNode>);

impl ProbeTransport for Live<'_> {
    fn probe(&mut self, route: &Route, count: u32) -> ProbeOutcome {
        self.0.probe(
            route,
            count,
            SimDuration::from_millis(10),
            SimDuration::from_millis(500),
        )
    }
}

fn train_profile(plan: &NetworkPlan, src: NodeId, dst: NodeId, n: u64) -> NormalProfile {
    let sets: Vec<Vec<Route>> = (0..n)
        .map(|seed| {
            run_attacked_discovery(
                plan,
                ProtocolKind::Mr,
                &AttackWiring::none(),
                src,
                dst,
                seed,
            )
            .routes
        })
        .collect();
    NormalProfile::train(&sets, SamConfig::default().pmf_bins)
}

#[test]
fn full_pipeline_confirms_blackholing_wormhole_on_cluster() {
    let plan = two_cluster(1);
    let src = plan.src_pool[3];
    let dst = plan.dst_pool[12];
    let profile = train_profile(&plan, src, dst, 10);

    let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::blackholing());
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        77,
    );
    let discovery = session.discover(src, dst, DEFAULT_MAX_WAIT);
    assert!(!discovery.routes.is_empty());

    let procedure = Procedure::default();
    let outcome = procedure.execute(&discovery.routes, &profile, &mut Live(&mut session));
    let DetectionOutcome::Confirmed { report, .. } = outcome else {
        panic!("expected confirmation, got {outcome:?}");
    };
    let pair = plan.attacker_pairs[0];
    assert_eq!(report.suspect_link, (pair.a, pair.b));
    assert!(
        report.probe_ack_ratio < 0.5,
        "blackhole must eat the probes"
    );
    assert_eq!(report.isolate, vec![pair.a, pair.b]);
}

#[test]
fn full_pipeline_stays_quiet_without_attack() {
    let plan = two_cluster(1);
    let src = plan.src_pool[3];
    let dst = plan.dst_pool[12];
    let profile = train_profile(&plan, src, dst, 10);

    let wiring = AttackWiring::none();
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        78,
    );
    let discovery = session.discover(src, dst, DEFAULT_MAX_WAIT);
    let procedure = Procedure::default();
    let outcome = procedure.execute(&discovery.routes, &profile, &mut Live(&mut session));
    match outcome {
        DetectionOutcome::Normal { selected_routes } => {
            assert!(!selected_routes.is_empty());
            assert!(selected_routes.len() <= 3);
            // Selected routes are real paths of the topology.
            for r in &selected_routes {
                for w in r.nodes().windows(2) {
                    assert!(plan.topology.are_neighbors(w[0], w[1]));
                }
            }
        }
        // A borderline suspicion is tolerable as long as probes clear it.
        DetectionOutcome::SuspiciousUnconfirmed { .. } => {}
        DetectionOutcome::Confirmed { report, .. } => {
            panic!("false confirmation on a clean network: {report:?}")
        }
    }
}

#[test]
fn pure_relay_wormhole_probes_succeed_but_statistics_confirm() {
    // A wormhole that relays data faithfully: the probes come back (the
    // tunnel forwards them), so only the statistics can convict.
    let plan = two_cluster(1);
    let src = plan.src_pool[0];
    let dst = plan.dst_pool[0];
    let profile = train_profile(&plan, src, dst, 10);

    let wiring = AttackWiring::all_pairs(&plan, WormholeConfig::default());
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        79,
    );
    let discovery = session.discover(src, dst, DEFAULT_MAX_WAIT);

    // Direct probe over a captured route: the relaying wormhole delivers.
    let captured = discovery
        .routes
        .iter()
        .find(|r| r.contains_link(tunnel_link(plan.attacker_pairs[0])))
        .expect("cluster capture")
        .clone();
    let probe = session.probe(
        &captured,
        5,
        SimDuration::from_millis(10),
        SimDuration::from_millis(500),
    );
    assert_eq!(probe.acked, 5, "pure relay must deliver data");

    let procedure = Procedure::default();
    let outcome = procedure.execute(&discovery.routes, &profile, &mut Live(&mut session));
    assert!(
        outcome.is_confirmed(),
        "statistical evidence alone should confirm: {outcome:?}"
    );
}

#[test]
fn grayhole_wormhole_partially_acks() {
    let plan = two_cluster(1);
    let src = plan.src_pool[1];
    let dst = plan.dst_pool[1];
    let cfg = WormholeConfig {
        drop: DropPolicy::Grayhole(0.5),
        ..WormholeConfig::default()
    };
    let wiring = AttackWiring::all_pairs(&plan, cfg);
    let mut session = attack_session(
        &plan,
        RouterConfig::new(ProtocolKind::Mr),
        &wiring,
        LatencyModel::default(),
        80,
    );
    let discovery = session.discover(src, dst, DEFAULT_MAX_WAIT);
    let captured = discovery
        .routes
        .iter()
        .find(|r| r.contains_link(tunnel_link(plan.attacker_pairs[0])))
        .expect("cluster capture")
        .clone();
    let probe = session.probe(
        &captured,
        40,
        SimDuration::from_millis(5),
        SimDuration::from_millis(500),
    );
    assert!(probe.acked > 0, "grayhole lets some through");
    assert!(
        probe.acked < probe.sent,
        "grayhole must drop some ({}/{})",
        probe.acked,
        probe.sent
    );
}

#[test]
fn ids_agent_over_live_discoveries() {
    // The agent consumes live route sets from the simulator rather than
    // synthetic fixtures.
    let plan = uniform_grid(10, 6, 1);
    let src = plan.src_pool[2];
    let dst = plan.dst_pool[2];
    let mut agent = IdsAgent::new(
        dst,
        AgentConfig {
            training_target: 8,
            ..AgentConfig::default()
        },
    );
    for seed in 0..8 {
        let out = run_attacked_discovery(
            &plan,
            ProtocolKind::Mr,
            &AttackWiring::none(),
            src,
            dst,
            seed,
        );
        agent.observe_training(out.routes);
    }
    assert_eq!(agent.phase(), AgentPhase::Operational);

    let mut transport = all_ack_transport();
    // Normal observation.
    let normal = run_attacked_discovery(
        &plan,
        ProtocolKind::Mr,
        &AttackWiring::none(),
        src,
        dst,
        100,
    );
    assert!(matches!(
        agent.observe(&normal.routes, &mut transport),
        AgentAction::Proceed { .. }
    ));
    // Attacked observation.
    let attacked = run_wormholed_discovery(
        &plan,
        ProtocolKind::Mr,
        WormholeConfig::default(),
        src,
        dst,
        100,
    );
    match agent.observe(&attacked.routes, &mut transport) {
        AgentAction::Respond { report, .. } => {
            let pair = plan.attacker_pairs[0];
            assert_eq!(report.suspect_link, (pair.a, pair.b));
        }
        other => panic!("expected Respond, got {other:?}"),
    }
}

#[test]
fn hidden_wormhole_evades_link_features_but_not_hop_extension() {
    // Research finding documented in DESIGN.md/EXPERIMENTS.md: a
    // verbatim-replay wormhole captures everything, yet every captured
    // route crosses a *different* fake link (one per attacker-neighbour
    // pair), so the paper's link-frequency features barely move. The mean
    // route length collapses instead; the hop extension restores
    // detection.
    let plan = two_cluster(1);
    let src = plan.src_pool[2];
    let dst = plan.dst_pool[2];
    let profile = train_profile(&plan, src, dst, 10);
    let paper = SamDetector::default();
    let extended = SamDetector::new(SamConfig {
        use_hop_feature: true,
        ..SamConfig::default()
    });

    let mut extended_flags = 0;
    for seed in 80..88 {
        let out = run_wormholed_discovery(
            &plan,
            ProtocolKind::Mr,
            WormholeConfig::hidden(),
            src,
            dst,
            seed,
        );
        // Capture is total: every route crosses a replayed (fake) hop.
        let fake = out
            .routes
            .iter()
            .filter(|r| {
                r.nodes()
                    .windows(2)
                    .any(|w| !plan.topology.are_neighbors(w[0], w[1]))
            })
            .count();
        assert_eq!(fake, out.routes.len(), "seed {seed}: capture not total");

        let a = extended.analyze(&out.routes, &profile);
        if a.anomalous {
            extended_flags += 1;
            assert!(
                a.z_hops_short > paper.config().z_threshold,
                "seed {seed}: expected the hop feature to drive detection: {a:?}"
            );
        }
    }
    assert!(
        extended_flags >= 6,
        "hop extension flagged only {extended_flags}/8 hidden-mode runs"
    );
}
