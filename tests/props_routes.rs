//! Property-based tests for routes, links, and the disjoint-route
//! selection used by SMR-style RREP generation and SAM's step-1 feedback.

use proptest::prelude::*;
use wormhole_sam::prelude::*;

fn arb_route(pool: u32, max_len: usize) -> impl Strategy<Value = Route> {
    proptest::sample::subsequence((0..pool).collect::<Vec<u32>>(), 2..=max_len.max(2))
        .prop_shuffle()
        .prop_map(|ids| Route::new(ids.into_iter().map(NodeId).collect()).expect("loop-free"))
}

proptest! {
    #[test]
    fn route_construction_rejects_loops(mut ids in proptest::collection::vec(0u32..20, 3..8)) {
        // Force a duplicate.
        let dup = ids[0];
        ids.push(dup);
        let result = Route::new(ids.into_iter().map(NodeId).collect());
        prop_assert!(matches!(result, Err(RouteError::Loop(_))));
    }

    #[test]
    fn route_links_count_equals_hops(route in arb_route(30, 10)) {
        prop_assert_eq!(route.links().count(), route.hops());
        prop_assert_eq!(route.nodes().len(), route.hops() + 1);
    }

    #[test]
    fn reversal_is_involutive(route in arb_route(30, 10)) {
        prop_assert_eq!(route.reversed().reversed(), route);
    }

    #[test]
    fn next_and_prev_hop_are_inverse(route in arb_route(30, 10)) {
        for w in route.nodes().windows(2) {
            prop_assert_eq!(route.next_hop(w[0]), Some(w[1]));
            prop_assert_eq!(route.prev_hop(w[1]), Some(w[0]));
        }
        prop_assert_eq!(route.next_hop(route.dst()), None);
        prop_assert_eq!(route.prev_hop(route.src()), None);
    }

    #[test]
    fn contains_link_matches_links_iter(route in arb_route(30, 10)) {
        for link in route.links() {
            prop_assert!(route.contains_link(link));
        }
        // A link between non-adjacent route nodes is not contained.
        if route.hops() >= 2 {
            let skip = Link::new(route.nodes()[0], route.nodes()[2]);
            prop_assert!(!route.contains_link(skip) || route.nodes().windows(2).any(|w| Link::new(w[0], w[1]) == skip));
        }
    }

    #[test]
    fn shared_links_is_symmetric(a in arb_route(16, 8), b in arb_route(16, 8)) {
        prop_assert_eq!(a.shared_links(&b), b.shared_links(&a));
        prop_assert_eq!(a.link_disjoint(&b), b.link_disjoint(&a));
        prop_assert_eq!(a.node_disjoint(&b), b.node_disjoint(&a));
    }

    #[test]
    fn node_disjoint_implies_link_disjoint(a in arb_route(16, 8), b in arb_route(16, 8)) {
        if a.node_disjoint(&b) && a.src() != b.src() && a.dst() != b.dst()
            && !a.contains(b.src()) && !a.contains(b.dst())
            && !b.contains(a.src()) && !b.contains(a.dst()) {
            prop_assert!(a.link_disjoint(&b));
        }
    }

    #[test]
    fn select_disjoint_subset_properties(
        routes in proptest::collection::vec(arb_route(20, 8), 0..12),
        k in 0usize..6,
    ) {
        let picked = select_disjoint(&routes, k);
        // Size bound.
        prop_assert!(picked.len() <= k.min(routes.len()));
        // Every pick is from the input.
        for p in &picked {
            prop_assert!(routes.contains(p));
        }
        // The first pick (if any) is a shortest route.
        if let Some(first) = picked.first() {
            let min_hops = routes.iter().map(Route::hops).min().expect("non-empty");
            prop_assert_eq!(first.hops(), min_hops);
        }
        // No duplicates among picks.
        for i in 0..picked.len() {
            for j in (i + 1)..picked.len() {
                prop_assert!(picked[i] != picked[j] || routes.iter().filter(|r| *r == &picked[i]).count() > 1);
            }
        }
    }

    #[test]
    fn select_disjoint_exhausts_when_k_large(routes in proptest::collection::vec(arb_route(20, 8), 1..8)) {
        let picked = select_disjoint(&routes, routes.len() + 5);
        prop_assert_eq!(picked.len(), routes.len());
    }
}
