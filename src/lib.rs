//! # wormhole-sam
//!
//! A from-scratch Rust reproduction of *"Wormhole Attacks Detection in
//! Wireless Ad Hoc Networks: A Statistical Analysis Approach"* (Song,
//! Qian, Li — IPDPS/IPPS workshops 2005): the **SAM** detector plus the
//! entire simulation stack it is evaluated on.
//!
//! SAM detects wormhole attacks — and localizes the colluding pair —
//! using only the route set a multi-path route discovery already
//! produces: under a wormhole the tunneled link rides on almost every
//! route, so the maximum link relative frequency `p_max` and the top-two
//! gap `Δ` spike. No clock synchronization, GPS, directional antennas, or
//! protocol changes are required.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sim`] (`manet-sim`) | discrete-event engine, radio model, topologies, metrics |
//! | [`routing`] (`manet-routing`) | DSR, MR (the paper's SMR-like protocol), SMR, AOMDV |
//! | [`attacks`] (`manet-attacks`) | wormhole (participation/hidden, multi-pair), blackhole/grayhole |
//! | [`sam`] | link statistics, PMF profiles, detector, 3-step procedure, IDS agent |
//! | [`experiments`] (`sam-experiments`) | every table/figure of the paper + ablations |
//!
//! ## Quickstart
//!
//! ```
//! use wormhole_sam::prelude::*;
//!
//! // The paper's Fig. 1 scenario: two clusters joined by a sparse bridge,
//! // a wormhole endpoint flanking each cluster.
//! let plan = two_cluster(1);
//! let src = plan.src_pool[0];
//! let dst = plan.dst_pool[0];
//!
//! // One multi-path route discovery under attack…
//! let attacked = run_wormholed_discovery(
//!     &plan, ProtocolKind::Mr, WormholeConfig::default(), src, dst, 7,
//! );
//!
//! // …and SAM's statistics expose the tunnel.
//! let stats = LinkStats::from_routes(&attacked.routes);
//! let tunnel = tunnel_link(plan.attacker_pairs[0]);
//! assert!(stats.p_max() > 0.1);
//! let top = stats.top_links_excluding(&[src, dst]);
//! assert!(top.contains(&tunnel), "SAM localizes the attacker pair");
//! ```
//!
//! See `examples/` for full scenarios (training, online detection, the
//! three-step procedure with probe testing, protocol comparisons) and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use manet_attacks as attacks;
pub use manet_routing as routing;
pub use manet_sim as sim;
pub use sam;
pub use sam_experiments as experiments;

/// Everything, in one import.
pub mod prelude {
    pub use manet_attacks::prelude::*;
    pub use manet_routing::prelude::*;
    pub use manet_sim::prelude::*;
    pub use sam::prelude::*;
    pub use sam_experiments::prelude::*;
}
